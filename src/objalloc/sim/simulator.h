// Simulator: wires processors, local databases, the network and a protocol
// together; serializes requests (the paper's concurrency-control
// assumption); stamps write versions; and validates the freshness invariant
// (each committed read returns the latest committed version).

#ifndef OBJALLOC_SIM_SIMULATOR_H_
#define OBJALLOC_SIM_SIMULATOR_H_

#include <memory>
#include <vector>

#include "objalloc/model/schedule.h"
#include "objalloc/sim/failure.h"
#include "objalloc/sim/latency.h"
#include "objalloc/sim/network.h"
#include "objalloc/sim/processor.h"
#include "objalloc/sim/quorum_protocol.h"
#include "objalloc/util/stats.h"
#include "objalloc/util/status.h"

namespace objalloc::sim {

enum class ProtocolKind {
  kStatic,   // SA: read-one-write-all over the initial scheme
  kDynamic,  // DA with quorum failover
  kQuorum,   // quorum consensus from the start
};

struct SimulatorOptions {
  ProtocolKind protocol = ProtocolKind::kDynamic;
  int num_processors = 8;
  util::ProcessorSet initial_scheme = util::ProcessorSet({0, 1});
  QuorumConfig quorum;   // zeros = majority
  LatencyModel latency;  // virtual-time parameters (see latency.h)
  // When non-empty, each processor's local database is backed by a
  // crash-atomic on-disk record under this directory (durable_store.h):
  // crashing loses the volatile image, recovery reloads from disk.
  std::string durable_dir;

  util::Status Validate() const;
};

struct RequestOutcome {
  bool ok = false;       // request served
  bool stale = false;    // a read returned an outdated version
  int64_t version = -1;
  uint64_t value = 0;
  // Virtual service latency: the time until the request fully settled
  // (reply delivered, every pushed replica durable, invalidations applied).
  double latency = 0;
};

class Simulator {
 public:
  explicit Simulator(const SimulatorOptions& options);

  // Failure injection; crashing wipes nothing but drops traffic, recovery
  // re-admits the processor with an invalidated local copy (plus a status
  // handshake if the system has degraded to quorum mode).
  void Crash(util::ProcessorId p);
  void Recover(util::ProcessorId p);
  bool IsCrashed(util::ProcessorId p) const { return network_.IsCrashed(p); }

  // Serialized request execution. Requests from crashed processors are
  // rejected as unavailable.
  RequestOutcome SubmitRead(util::ProcessorId p);
  RequestOutcome SubmitWrite(util::ProcessorId p, uint64_t value);

  const SimMetrics& metrics() const { return metrics_; }
  int64_t latest_version() const { return latest_version_; }
  const LocalDatabase& database(util::ProcessorId p) const {
    return *databases_[static_cast<size_t>(p)];
  }

  // Message tracing (see Network::EnableTrace): records every transmission
  // so tests can assert exact protocol sequences.
  void EnableMessageTrace(size_t capacity = 1024) {
    network_.EnableTrace(capacity);
  }
  void ClearMessageTrace() { network_.ClearTrace(); }
  const std::vector<Network::TraceEntry>& message_trace() const {
    return network_.trace();
  }

  struct RunReport {
    int64_t served = 0;
    int64_t unavailable = 0;
    int64_t stale_reads = 0;
    SimMetrics metrics;
    // Service-latency distributions of served requests (virtual time).
    util::PercentileTracker read_latency;
    util::PercentileTracker write_latency;
  };

  // Replays `schedule`, firing `plan` events at their positions. Write
  // values are derived from the request index.
  RunReport RunSchedule(const model::Schedule& schedule,
                        const FailurePlan& plan = FailurePlan{});

 private:
  // Pumps the network and timeout hooks until node `p` completes or gives
  // up; false means the request is unavailable.
  bool PumpUntilDone(util::ProcessorId p);

  SimulatorOptions options_;
  SimMetrics metrics_;
  VirtualClocks clocks_;
  Network network_;
  std::vector<std::unique_ptr<DurableObjectStore>> stores_;
  std::vector<std::unique_ptr<LocalDatabase>> databases_;
  std::vector<std::unique_ptr<Node>> nodes_;
  int64_t latest_version_ = 0;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_SIMULATOR_H_
