// MultiObjectSimulator — the message-passing simulator's multi-object mode,
// wiring failure injection and latency modeling into the multi-object
// serving path. Each object runs its own protocol instance (its own
// replicas, joins and invalidations are per object, exactly as in the
// analytic service layer); processor crashes and recoveries are global
// events applied to every object's instance, since a crashed site hosts
// replicas of many objects at once.
//
// The simulator stays deliberately single-threaded (DESIGN.md §6): its
// point is the exact message interleaving. It is the cross-check for the
// sharded ObjectService, not its competitor — failure-free, its per-object
// traffic must equal the analytic accounting count for count.

#ifndef OBJALLOC_SIM_MULTI_OBJECT_SIM_H_
#define OBJALLOC_SIM_MULTI_OBJECT_SIM_H_

#include <memory>
#include <vector>

#include "objalloc/sim/simulator.h"
#include "objalloc/workload/event_source.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::sim {

struct MultiObjectSimOptions {
  // Per-object protocol configuration (every object starts from the same
  // scheme; durable_dir must stay empty — per-object stores would collide).
  SimulatorOptions base;
  int num_objects = 16;

  util::Status Validate() const;
};

class MultiObjectSimulator {
 public:
  explicit MultiObjectSimulator(const MultiObjectSimOptions& options);

  // Global failure injection: affects every object hosted at `p`.
  void Crash(util::ProcessorId p);
  void Recover(util::ProcessorId p);
  bool IsCrashed(util::ProcessorId p) const;

  // Serves one event against its object's protocol instance. Write values
  // are derived from a global submission counter, so every committed write
  // is distinguishable when validating freshness.
  RequestOutcome Submit(int64_t object, const model::Request& request);

  struct Report {
    int64_t served = 0;
    int64_t unavailable = 0;
    int64_t stale_reads = 0;
    SimMetrics metrics;  // summed over objects
    util::PercentileTracker read_latency;
    util::PercentileTracker write_latency;
  };

  // Replays a trace, firing `plan` events at their global event positions
  // (FailureEvent::before_request indexes the interleaved stream). Events
  // must be in range; the trace shape is validated against the options.
  util::StatusOr<Report> RunTrace(const workload::MultiObjectTrace& trace,
                                  const FailurePlan& plan = FailurePlan{});

  // Streaming variant: drains `source` in bounded memory. The failure plan
  // again indexes the global event stream.
  util::StatusOr<Report> RunSource(workload::EventSource& source,
                                   const FailurePlan& plan = FailurePlan{});

  int num_objects() const { return static_cast<int>(sims_.size()); }
  const Simulator& object_sim(int64_t object) const {
    return *sims_[static_cast<size_t>(object)];
  }

 private:
  void Inject(const FailureEvent& event);
  // Serves one event and folds the outcome into `*report`.
  util::Status Step(int64_t object, const model::Request& request,
                    Report* report);
  // Sums per-object simulator metrics into `*report`.
  void FinishReport(Report* report) const;

  MultiObjectSimOptions options_;
  std::vector<std::unique_ptr<Simulator>> sims_;
  int64_t submissions_ = 0;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_MULTI_OBJECT_SIM_H_
