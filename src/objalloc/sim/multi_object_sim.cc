#include "objalloc/sim/multi_object_sim.h"

#include <array>

#include "objalloc/util/logging.h"

namespace objalloc::sim {

util::Status MultiObjectSimOptions::Validate() const {
  OBJALLOC_RETURN_IF_ERROR(base.Validate());
  if (num_objects < 1) {
    return util::Status::InvalidArgument("need at least one object");
  }
  if (!base.durable_dir.empty()) {
    return util::Status::InvalidArgument(
        "multi-object mode does not support durable stores (per-object "
        "record files would collide)");
  }
  return util::Status::Ok();
}

MultiObjectSimulator::MultiObjectSimulator(
    const MultiObjectSimOptions& options)
    : options_(options) {
  util::Status status = options.Validate();
  OBJALLOC_CHECK(status.ok()) << status.ToString();
  sims_.reserve(static_cast<size_t>(options.num_objects));
  for (int k = 0; k < options.num_objects; ++k) {
    sims_.push_back(std::make_unique<Simulator>(options.base));
  }
}

void MultiObjectSimulator::Crash(util::ProcessorId p) {
  for (auto& sim : sims_) sim->Crash(p);
}

void MultiObjectSimulator::Recover(util::ProcessorId p) {
  for (auto& sim : sims_) sim->Recover(p);
}

bool MultiObjectSimulator::IsCrashed(util::ProcessorId p) const {
  return sims_.front()->IsCrashed(p);
}

RequestOutcome MultiObjectSimulator::Submit(int64_t object,
                                            const model::Request& request) {
  OBJALLOC_CHECK_GE(object, 0);
  OBJALLOC_CHECK_LT(object, static_cast<int64_t>(sims_.size()));
  Simulator& sim = *sims_[static_cast<size_t>(object)];
  ++submissions_;
  return request.is_read()
             ? sim.SubmitRead(request.processor)
             : sim.SubmitWrite(request.processor,
                               static_cast<uint64_t>(submissions_));
}

void MultiObjectSimulator::Inject(const FailureEvent& event) {
  if (event.crash) {
    Crash(event.processor);
  } else {
    Recover(event.processor);
  }
}

util::Status MultiObjectSimulator::Step(int64_t object,
                                        const model::Request& request,
                                        Report* report) {
  if (object < 0 || object >= static_cast<int64_t>(sims_.size())) {
    return util::Status::OutOfRange("object id out of range: " +
                                    std::to_string(object));
  }
  if (request.processor < 0 ||
      request.processor >= options_.base.num_processors) {
    return util::Status::OutOfRange("processor out of range");
  }
  RequestOutcome outcome = Submit(object, request);
  if (outcome.ok) {
    ++report->served;
    if (outcome.stale) ++report->stale_reads;
    (request.is_read() ? report->read_latency : report->write_latency)
        .Add(outcome.latency);
  } else {
    ++report->unavailable;
  }
  return util::Status::Ok();
}

void MultiObjectSimulator::FinishReport(Report* report) const {
  for (const auto& sim : sims_) {
    const SimMetrics& m = sim->metrics();
    report->metrics.control_messages += m.control_messages;
    report->metrics.data_messages += m.data_messages;
    report->metrics.io_ops += m.io_ops;
    report->metrics.dropped_messages += m.dropped_messages;
    report->metrics.failovers += m.failovers;
    report->metrics.unavailable_requests += m.unavailable_requests;
    report->metrics.stale_reads += m.stale_reads;
  }
}

util::StatusOr<MultiObjectSimulator::Report> MultiObjectSimulator::RunTrace(
    const workload::MultiObjectTrace& trace, const FailurePlan& plan) {
  if (trace.num_processors != options_.base.num_processors ||
      trace.num_objects > num_objects()) {
    return util::Status::InvalidArgument(
        "trace shape does not match simulator options");
  }
  if (!plan.IsValid(options_.base.num_processors)) {
    return util::Status::InvalidArgument("invalid failure plan");
  }
  Report report;
  size_t next_event = 0;
  for (size_t index = 0; index <= trace.events.size(); ++index) {
    while (next_event < plan.events.size() &&
           plan.events[next_event].before_request == index) {
      Inject(plan.events[next_event++]);
    }
    if (index == trace.events.size()) break;
    const workload::MultiObjectEvent& event = trace.events[index];
    OBJALLOC_RETURN_IF_ERROR(Step(event.object, event.request, &report));
  }
  FinishReport(&report);
  return report;
}

util::StatusOr<MultiObjectSimulator::Report> MultiObjectSimulator::RunSource(
    workload::EventSource& source, const FailurePlan& plan) {
  if (!plan.IsValid(options_.base.num_processors)) {
    return util::Status::InvalidArgument("invalid failure plan");
  }
  Report report;
  size_t next_event = 0;
  size_t index = 0;
  std::array<workload::MultiObjectEvent, 256> buffer;
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return filled.status();
    if (*filled == 0) break;
    for (size_t k = 0; k < *filled; ++k, ++index) {
      while (next_event < plan.events.size() &&
             plan.events[next_event].before_request == index) {
        Inject(plan.events[next_event++]);
      }
      OBJALLOC_RETURN_IF_ERROR(
          Step(buffer[k].object, buffer[k].request, &report));
    }
  }
  // Tail events scheduled at or past the end of the stream.
  while (next_event < plan.events.size()) {
    Inject(plan.events[next_event++]);
  }
  FinishReport(&report);
  return report;
}

}  // namespace objalloc::sim
