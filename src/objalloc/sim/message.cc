#include "objalloc/sim/message.h"

#include <sstream>

namespace objalloc::sim {

bool IsDataMessage(MessageType type) {
  return type == MessageType::kObjectReply ||
         type == MessageType::kObjectPropagate;
}

const char* MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kReadRequest:
      return "READ_REQUEST";
    case MessageType::kInvalidate:
      return "INVALIDATE";
    case MessageType::kVersionQuery:
      return "VERSION_QUERY";
    case MessageType::kVersionReply:
      return "VERSION_REPLY";
    case MessageType::kModeSwitch:
      return "MODE_SWITCH";
    case MessageType::kObjectReply:
      return "OBJECT_REPLY";
    case MessageType::kObjectPropagate:
      return "OBJECT_PROPAGATE";
  }
  return "?";
}

std::string Message::ToString() const {
  std::ostringstream os;
  os << MessageTypeToString(type) << " " << src << "->" << dst
     << " v=" << version << " origin=" << origin;
  return os.str();
}

}  // namespace objalloc::sim
