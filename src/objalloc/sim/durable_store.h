// DurableObjectStore — the stable storage behind a processor's local
// database: the paper's "local database that resides on disk" made literal.
//
// One util/record_io frame per file (length prefix + CRC32 + payload of
// valid flag (1) | version (8) | value (8)) — the same framing the service
// WAL and checkpoints use, so there is exactly one torn/corrupt detector in
// the tree.
//
// Writes are crash-atomic via util::WriteFileAtomic (temp file, fsync,
// rename, directory fsync); Load sweeps any stranded temp file and verifies
// the CRC, so torn or corrupted records are detected and reported, never
// silently served.

#ifndef OBJALLOC_SIM_DURABLE_STORE_H_
#define OBJALLOC_SIM_DURABLE_STORE_H_

#include <cstdint>
#include <string>

#include "objalloc/util/status.h"

namespace objalloc::sim {

class DurableObjectStore {
 public:
  // Binds the store to `path` (the file need not exist yet).
  explicit DurableObjectStore(std::string path);

  struct Snapshot {
    bool present = false;  // a record exists on disk
    bool valid = false;    // the copy is catalogued as current
    int64_t version = -1;
    uint64_t value = 0;
  };

  // Atomically replaces the on-disk record.
  util::Status Persist(int64_t version, uint64_t value, bool valid);

  // Loads and verifies the record. A missing file yields a Snapshot with
  // present = false; a malformed or corrupt record is an error.
  util::StatusOr<Snapshot> Load() const;

  // Removes the record (used by test teardown).
  util::Status Remove();

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_DURABLE_STORE_H_
