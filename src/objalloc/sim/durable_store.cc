#include "objalloc/sim/durable_store.h"

#include "objalloc/util/io.h"
#include "objalloc/util/record_io.h"

namespace objalloc::sim {

namespace {

// Payload layout inside one util/record_io frame (which supplies the length
// prefix and the CRC32): valid flag (1) | version (8) | value (8).
constexpr uint8_t kRecordType = 1;

}  // namespace

DurableObjectStore::DurableObjectStore(std::string path)
    : path_(std::move(path)) {}

util::Status DurableObjectStore::Persist(int64_t version, uint64_t value,
                                         bool valid) {
  std::string payload;
  util::AppendScalar<uint8_t>(valid ? 1 : 0, &payload);
  util::AppendScalar<int64_t>(version, &payload);
  util::AppendScalar<uint64_t>(value, &payload);
  std::string framed;
  util::AppendRecord(kRecordType, payload, &framed);
  // WriteFileAtomic fsyncs the temp file before the rename and the directory
  // after it, so a crash leaves either the old record or the new one — never
  // a torn file under the final name.
  return util::WriteFileAtomic(path_, framed);
}

util::StatusOr<DurableObjectStore::Snapshot> DurableObjectStore::Load()
    const {
  // A crash between writing `path + ".tmp"` and the rename strands the temp
  // file; it was never published, so drop it rather than letting it shadow a
  // future Persist or confuse directory scans.
  (void)util::RemoveFile(path_ + ".tmp");
  auto buffer = util::ReadFileToString(path_);
  if (!buffer.ok()) {
    if (buffer.status().code() == util::StatusCode::kNotFound) {
      return Snapshot{};  // no record yet
    }
    return buffer.status();
  }
  util::RecordCursor cursor(*buffer);
  util::RecordView record;
  if (!cursor.Next(&record)) {
    OBJALLOC_RETURN_IF_ERROR(cursor.status());
    return util::Status::Internal("truncated record in " + path_);
  }
  if (record.type != kRecordType) {
    return util::Status::Internal("bad record type in " + path_);
  }
  util::PayloadReader reader(record.payload);
  Snapshot snapshot;
  uint8_t valid = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&valid));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&snapshot.version));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&snapshot.value));
  if (!reader.exhausted()) {
    return util::Status::Internal("malformed record payload in " + path_);
  }
  if (cursor.tail_bytes() > 0) {
    return util::Status::Internal("trailing bytes after record in " + path_);
  }
  snapshot.present = true;
  snapshot.valid = valid != 0;
  return snapshot;
}

util::Status DurableObjectStore::Remove() {
  (void)util::RemoveFile(path_ + ".tmp");
  return util::RemoveFile(path_);
}

}  // namespace objalloc::sim
