#include "objalloc/sim/durable_store.h"

#include <cstdio>
#include <cstring>
#include <fstream>

#include "objalloc/util/crc32.h"

namespace objalloc::sim {

namespace {

constexpr uint32_t kMagic = 0x0bA110c5;
constexpr size_t kRecordSize = 4 + 1 + 3 + 8 + 8 + 4;

struct PackedRecord {
  unsigned char bytes[kRecordSize];

  void Pack(int64_t version, uint64_t value, bool valid) {
    std::memcpy(bytes, &kMagic, 4);
    bytes[4] = valid ? 1 : 0;
    bytes[5] = bytes[6] = bytes[7] = 0;
    std::memcpy(bytes + 8, &version, 8);
    std::memcpy(bytes + 16, &value, 8);
    uint32_t crc = util::Crc32(bytes, kRecordSize - 4);
    std::memcpy(bytes + kRecordSize - 4, &crc, 4);
  }

  util::Status Unpack(DurableObjectStore::Snapshot* out) const {
    uint32_t magic = 0, crc = 0;
    std::memcpy(&magic, bytes, 4);
    if (magic != kMagic) {
      return util::Status::Internal("bad record magic");
    }
    std::memcpy(&crc, bytes + kRecordSize - 4, 4);
    if (crc != util::Crc32(bytes, kRecordSize - 4)) {
      return util::Status::Internal("record checksum mismatch");
    }
    out->present = true;
    out->valid = bytes[4] != 0;
    std::memcpy(&out->version, bytes + 8, 8);
    std::memcpy(&out->value, bytes + 16, 8);
    return util::Status::Ok();
  }
};

}  // namespace

DurableObjectStore::DurableObjectStore(std::string path)
    : path_(std::move(path)) {}

util::Status DurableObjectStore::Persist(int64_t version, uint64_t value,
                                         bool valid) {
  PackedRecord record;
  record.Pack(version, value, valid);
  const std::string temp = path_ + ".tmp";
  {
    std::ofstream out(temp, std::ios::binary | std::ios::trunc);
    if (!out) return util::Status::Internal("cannot open " + temp);
    out.write(reinterpret_cast<const char*>(record.bytes), kRecordSize);
    out.flush();
    if (!out) return util::Status::Internal("short write to " + temp);
  }
  if (std::rename(temp.c_str(), path_.c_str()) != 0) {
    return util::Status::Internal("rename failed for " + path_);
  }
  return util::Status::Ok();
}

util::StatusOr<DurableObjectStore::Snapshot> DurableObjectStore::Load()
    const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) return Snapshot{};  // no record yet
  PackedRecord record;
  in.read(reinterpret_cast<char*>(record.bytes), kRecordSize);
  if (in.gcount() != static_cast<std::streamsize>(kRecordSize)) {
    return util::Status::Internal("truncated record in " + path_);
  }
  Snapshot snapshot;
  OBJALLOC_RETURN_IF_ERROR(record.Unpack(&snapshot));
  return snapshot;
}

util::Status DurableObjectStore::Remove() {
  std::remove(path_.c_str());
  return util::Status::Ok();
}

}  // namespace objalloc::sim
