#include "objalloc/sim/failure.h"

namespace objalloc::sim {

bool FailurePlan::IsValid(int num_processors) const {
  size_t last = 0;
  for (const FailureEvent& event : events) {
    if (event.before_request < last) return false;
    if (event.processor < 0 || event.processor >= num_processors) {
      return false;
    }
    last = event.before_request;
  }
  return true;
}

}  // namespace objalloc::sim
