#include "objalloc/sim/failure.h"

#include <algorithm>

namespace objalloc::sim {

bool FailurePlan::IsValid(int num_processors) const {
  size_t last = 0;
  util::ProcessorSet crashed;
  util::ProcessorSet touched;  // processors named at the current index
  for (const FailureEvent& event : events) {
    if (event.before_request < last) return false;
    if (event.processor < 0 || event.processor >= num_processors) {
      return false;
    }
    if (event.before_request != last) touched.Clear();
    last = event.before_request;
    if (touched.Contains(event.processor)) return false;  // duplicate pair
    touched.Insert(event.processor);
    if (event.crash == crashed.Contains(event.processor)) {
      return false;  // crash of crashed / recover of live
    }
    if (event.crash) {
      crashed.Insert(event.processor);
    } else {
      crashed.Erase(event.processor);
    }
  }
  return true;
}

void FailurePlan::Normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FailureEvent& a, const FailureEvent& b) {
                     return a.before_request < b.before_request;
                   });
  size_t last = 0;
  util::ProcessorSet crashed;
  util::ProcessorSet touched;
  size_t kept = 0;
  for (const FailureEvent& event : events) {
    if (event.before_request != last) touched.Clear();
    last = event.before_request;
    if (touched.Contains(event.processor)) continue;  // duplicate pair
    if (event.crash == crashed.Contains(event.processor)) continue;  // no-op
    touched.Insert(event.processor);
    if (event.crash) {
      crashed.Insert(event.processor);
    } else {
      crashed.Erase(event.processor);
    }
    events[kept++] = event;
  }
  events.resize(kept);
}

core::FaultSchedule ToFaultSchedule(const FailurePlan& plan) {
  core::FaultSchedule schedule;
  schedule.reserve(plan.events.size());
  for (const FailureEvent& event : plan.events) {
    schedule.push_back(core::FaultEvent{event.before_request, event.processor,
                                        event.crash});
  }
  return schedule;
}

}  // namespace objalloc::sim
