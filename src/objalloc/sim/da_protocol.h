// DaNode — the dynamic allocation protocol endpoint (§4.2.2), with the
// failure handling the paper sketches in §2: when a member of the core set F
// (or the floating processor p during a core write) is unreachable, the
// system transitions to quorum consensus; the transition runs a
// missing-writes style recovery (version scan -> fetch latest survivor ->
// install on a write quorum) so that subsequent quorum operations see every
// committed version.
//
// Normal-mode behaviour matches the analytic DA cost model exactly
// (message-for-message, I/O-for-I/O):
//   * F members keep join-lists of the readers they served; on a write they
//     invalidate exactly the stale copies Y \ X \ {writer};
//   * the first member of F additionally tracks the current floating member
//     (p, or the last outside writer) and invalidates it on scheme changes.
//
// The failover broadcast (kModeSwitch) reaches every alive node before any
// quorum message does (FIFO), so no node keeps serving stale local reads in
// normal mode after the system degrades; processors that were down receive
// the mode via a recovery handshake (see Simulator::Recover).

#ifndef OBJALLOC_SIM_DA_PROTOCOL_H_
#define OBJALLOC_SIM_DA_PROTOCOL_H_

#include <vector>

#include "objalloc/sim/quorum_protocol.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::sim {

class DaNode final : public QuorumNode {
 public:
  // `initial_scheme` is F ∪ {p}; the split follows the core library's
  // convention (p = largest member) so simulator runs are comparable with
  // core::DynamicAllocation runs.
  DaNode(ProcessorId id, int num_processors, Network* network,
         LocalDatabase* db, SimMetrics* metrics, QuorumConfig quorum,
         util::ProcessorSet initial_scheme);

  void HandleMessage(const Message& msg) override;
  bool OnTimeout() override;
  void OnRecover() override;

  bool in_quorum_mode() const { return mode_ == Mode::kQuorum; }
  // Used by the simulator's recovery handshake when the rest of the system
  // has already degraded to quorum consensus.
  void ForceQuorumMode() { mode_ = Mode::kQuorum; }

  util::ProcessorSet join_list() const { return join_list_; }

 protected:
  void DoStartRead() override;
  void DoStartWrite() override;

 private:
  enum class Mode { kNormal, kQuorum };

  // The execution set DA assigns to a write by `writer` (§4.2.2).
  util::ProcessorSet WriteExecutionSet(ProcessorId writer) const;
  // Invalidation duties of an F member after a write by `writer`.
  void SendInvalidations(ProcessorId writer);
  // Transition to quorum consensus; the pending operation resumes after the
  // missing-writes recovery completes.
  void BeginFailover();
  // Recovery finished with the latest surviving version in hand.
  void FinishRecovery(int64_t version, uint64_t value, bool have_locally);

  Mode mode_ = Mode::kNormal;
  util::ProcessorSet f_;      // core set F
  ProcessorId p_ = -1;        // floating processor
  bool am_f_ = false;
  util::ProcessorSet join_list_;  // F members only
  ProcessorId floating_ = -1;     // tracked by the first member of F
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_DA_PROTOCOL_H_
