#include "objalloc/sim/processor.h"

#include "objalloc/util/logging.h"

namespace objalloc::sim {

Node::Node(ProcessorId id, int num_processors, Network* network,
           LocalDatabase* db, SimMetrics* metrics)
    : id_(id),
      num_processors_(num_processors),
      network_(network),
      db_(db),
      metrics_(metrics) {
  OBJALLOC_CHECK_GE(id, 0);
  OBJALLOC_CHECK_LT(id, num_processors);
}

void Node::BeginRead() {
  OBJALLOC_CHECK(done_) << "operation already in flight at node " << id_;
  done_ = false;
  pending_op_ = OpKind::kRead;
  DoStartRead();
}

void Node::BeginWrite(int64_t version, uint64_t value) {
  OBJALLOC_CHECK(done_) << "operation already in flight at node " << id_;
  done_ = false;
  pending_op_ = OpKind::kWrite;
  pending_version_ = version;
  pending_value_ = value;
  DoStartWrite();
}

void Node::CompleteRead(int64_t version, uint64_t value) {
  OBJALLOC_CHECK(!done_);
  OBJALLOC_CHECK(pending_op_ == OpKind::kRead);
  done_ = true;
  pending_op_ = OpKind::kNone;
  result_version_ = version;
  result_value_ = value;
}

void Node::CompleteWrite() {
  OBJALLOC_CHECK(!done_);
  OBJALLOC_CHECK(pending_op_ == OpKind::kWrite);
  done_ = true;
  pending_op_ = OpKind::kNone;
  result_version_ = pending_version_;
  result_value_ = pending_value_;
}

}  // namespace objalloc::sim
