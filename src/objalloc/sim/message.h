// Message vocabulary of the simulated protocols. Control messages carry only
// identifiers (object id, operation, version); the kObject* messages carry
// the object content and are the data messages of the cost model.

#ifndef OBJALLOC_SIM_MESSAGE_H_
#define OBJALLOC_SIM_MESSAGE_H_

#include <cstdint>
#include <string>

#include "objalloc/util/processor_set.h"

namespace objalloc::sim {

using util::ProcessorId;

enum class MessageType : uint8_t {
  // -- control messages --
  kReadRequest,    // "send me the latest object"
  kInvalidate,     // "your copy is obsolete" (DA write path)
  kVersionQuery,   // quorum: "what version do you hold?"
  kVersionReply,   // quorum: the answer (version, or -1 for no copy)
  kModeSwitch,     // DA failover: "switch to quorum-consensus mode"
  // -- data messages --
  kObjectReply,    // object content answering a kReadRequest
  kObjectPropagate,  // object content pushed by a write
};

// True for messages that carry the object content (cost cd); false for
// control messages (cost cc).
bool IsDataMessage(MessageType type);
const char* MessageTypeToString(MessageType type);

struct Message {
  MessageType type = MessageType::kReadRequest;
  ProcessorId src = -1;
  ProcessorId dst = -1;
  // Object payload / version info (kObject*, kVersionReply).
  int64_t version = -1;
  uint64_t value = 0;
  // The processor on whose behalf the message travels: the original writer
  // for kObjectPropagate / kInvalidate (receivers must not invalidate the
  // writer), the original reader for relayed requests.
  ProcessorId origin = -1;
  // Virtual send time, stamped by the network from the sender's clock (the
  // latency model; senders never set this themselves).
  double time = 0;

  std::string ToString() const;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_MESSAGE_H_
