#include "objalloc/sim/sa_protocol.h"

#include "objalloc/util/logging.h"

namespace objalloc::sim {

SaNode::SaNode(ProcessorId id, int num_processors, Network* network,
               LocalDatabase* db, SimMetrics* metrics,
               util::ProcessorSet scheme)
    : Node(id, num_processors, network, db, metrics),
      scheme_(scheme),
      members_(scheme.ToVector()) {
  OBJALLOC_CHECK(!scheme.Empty());
}

void SaNode::DoStartRead() {
  if (scheme_.Contains(id_) && db_->has_copy()) {
    LocalDatabase::Record record = db_->Get();
    CompleteRead(record.version, record.value);
    return;
  }
  next_source_ = 0;
  // If no member is reachable the operation stays pending and the simulator
  // records it unavailable after OnTimeout() finds nothing left to try.
  TryNextSource();
}

bool SaNode::TryNextSource() {
  while (next_source_ < members_.size()) {
    ProcessorId target = members_[next_source_++];
    if (target == id_) continue;  // own copy already found invalid
    if (network_->Send(Message{MessageType::kReadRequest, id_, target,
                               /*version=*/-1, /*value=*/0,
                               /*origin=*/id_})) {
      return true;
    }
    // Target crashed: the send timed out; fall through to the next member.
  }
  return false;
}

void SaNode::DoStartWrite() {
  // Strict read-one-write-ALL: every member of Q must receive the new
  // version. Abort and roll back if any member is unreachable.
  std::vector<ProcessorId> reached;
  for (ProcessorId member : members_) {
    if (member == id_) continue;
    if (!network_->Send(Message{MessageType::kObjectPropagate, id_, member,
                                pending_version_, pending_value_,
                                /*origin=*/id_})) {
      for (ProcessorId undo : reached) {
        network_->Send(Message{MessageType::kInvalidate, id_, undo,
                               pending_version_, 0, /*origin=*/id_});
      }
      // Leave the operation pending; OnTimeout reports it unavailable.
      return;
    }
    reached.push_back(member);
  }
  if (scheme_.Contains(id_)) db_->Put(pending_version_, pending_value_);
  CompleteWrite();
}

void SaNode::HandleMessage(const Message& msg) {
  switch (msg.type) {
    case MessageType::kReadRequest: {
      if (!db_->has_copy()) {
        // NACK: tell the reader to try another member (version -1).
        network_->Send(Message{MessageType::kVersionReply, id_, msg.src,
                               /*version=*/-1, 0, /*origin=*/id_});
        return;
      }
      LocalDatabase::Record record = db_->Get();
      network_->Send(Message{MessageType::kObjectReply, id_, msg.src,
                             record.version, record.value, /*origin=*/id_});
      return;
    }
    case MessageType::kObjectReply:
      // The reply to our pending remote read; SA never saves the copy.
      CompleteRead(msg.version, msg.value);
      return;
    case MessageType::kVersionReply:
      // NACK from a member without a valid copy: try the next one.
      TryNextSource();
      return;
    case MessageType::kObjectPropagate:
      db_->Put(msg.version, msg.value);
      return;
    case MessageType::kInvalidate:
      // Rollback of an aborted write: restore the before-image so the
      // previously committed version stays readable.
      db_->RevertAbortedWrite(msg.version);
      return;
    default:
      OBJALLOC_CHECK(false) << "SA node got unexpected " << msg.ToString();
  }
}

bool SaNode::OnTimeout() {
  // A pending read may still have untried members; a pending write has
  // already aborted.
  if (pending_op_ == OpKind::kRead) return TryNextSource();
  return false;
}

}  // namespace objalloc::sim
