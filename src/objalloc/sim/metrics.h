// Traffic and I/O accounting for the message-passing simulator. In
// failure-free runs the (control, data, io) counts must equal the analytic
// CostBreakdown of the allocation schedule the protocol implements — the
// integration tests enforce this count-for-count.

#ifndef OBJALLOC_SIM_METRICS_H_
#define OBJALLOC_SIM_METRICS_H_

#include <cstdint>
#include <string>

#include "objalloc/model/cost_evaluator.h"

namespace objalloc::sim {

struct SimMetrics {
  int64_t control_messages = 0;
  int64_t data_messages = 0;
  int64_t io_ops = 0;

  // Failure bookkeeping.
  int64_t dropped_messages = 0;      // sent to a crashed processor
  int64_t failovers = 0;             // DA -> quorum mode transitions
  int64_t unavailable_requests = 0;  // requests that could not be served
  int64_t stale_reads = 0;           // reads that returned an old version

  model::CostBreakdown ToBreakdown() const {
    return model::CostBreakdown{control_messages, data_messages, io_ops};
  }

  double Cost(const model::CostModel& cost_model) const {
    return ToBreakdown().Cost(cost_model);
  }

  std::string ToString() const;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_METRICS_H_
