// Virtual-time latency model. The paper's introduction motivates the cost
// model with response time (communication load -> bus contention -> response
// time; I/O load -> response time); this overlay measures it.
//
// Every processor carries a virtual clock. A message arrives at
// sender-clock + per-type latency and advances the receiver's clock; each
// local-database operation advances its processor's clock by the I/O
// latency. Requests are serialized, so clocks are reset per request and the
// request's *service latency* is the maximum clock at quiescence — the time
// until the request has fully settled everywhere (for a read: the reader's
// reply chain; for a write: the slowest replica made durable, invalidations
// delivered). No acknowledgement messages are introduced, so the message
// counts remain exactly the paper's.

#ifndef OBJALLOC_SIM_LATENCY_H_
#define OBJALLOC_SIM_LATENCY_H_

#include <algorithm>
#include <vector>

#include "objalloc/sim/message.h"
#include "objalloc/util/logging.h"

namespace objalloc::sim {

struct LatencyModel {
  double control = 1.0;  // one-way control-message latency
  double data = 3.0;     // one-way data-message latency
  double io = 5.0;       // one local-database input/output

  double ForMessage(MessageType type) const {
    return IsDataMessage(type) ? data : control;
  }
};

class VirtualClocks {
 public:
  VirtualClocks(int num_processors, LatencyModel model)
      : model_(model), clocks_(static_cast<size_t>(num_processors), 0.0) {}

  const LatencyModel& model() const { return model_; }

  double Of(ProcessorId p) const { return clocks_[Checked(p)]; }

  // Message delivery: the receiver cannot act before the arrival.
  void ObserveArrival(ProcessorId dst, double arrival) {
    clocks_[Checked(dst)] = std::max(clocks_[Checked(dst)], arrival);
  }

  // A local operation occupies the processor for `duration`.
  void Advance(ProcessorId p, double duration) {
    clocks_[Checked(p)] += duration;
  }

  void ResetAll() { std::fill(clocks_.begin(), clocks_.end(), 0.0); }

  double MaxClock() const {
    double best = 0;
    for (double c : clocks_) best = std::max(best, c);
    return best;
  }

 private:
  size_t Checked(ProcessorId p) const {
    OBJALLOC_CHECK_GE(p, 0);
    OBJALLOC_CHECK_LT(static_cast<size_t>(p), clocks_.size());
    return static_cast<size_t>(p);
  }

  LatencyModel model_;
  std::vector<double> clocks_;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_LATENCY_H_
