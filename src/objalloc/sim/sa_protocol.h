// SaNode — the static read-one-write-all protocol endpoint (§4.2.1).
//
// Normal operation matches the analytic SA cost exactly: local reads are one
// I/O; remote reads are request + input + transfer; writes propagate the
// object to every member of the fixed scheme Q.
//
// Failure behaviour (the paper leaves SA's failure handling implicit; strict
// ROWA is the textbook semantics):
//   * reads retry the members of Q in id order and fail only when none is
//     reachable (or none holds a valid copy);
//   * a write aborts as soon as any member of Q is unreachable — the
//     members already reached are told to roll the new version back
//     (invalidate), so no phantom version survives an aborted write.

#ifndef OBJALLOC_SIM_SA_PROTOCOL_H_
#define OBJALLOC_SIM_SA_PROTOCOL_H_

#include <vector>

#include "objalloc/sim/processor.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::sim {

class SaNode final : public Node {
 public:
  SaNode(ProcessorId id, int num_processors, Network* network,
         LocalDatabase* db, SimMetrics* metrics, util::ProcessorSet scheme);

  void HandleMessage(const Message& msg) override;
  bool OnTimeout() override;

 protected:
  void DoStartRead() override;
  void DoStartWrite() override;

 private:
  // Sends the read request to the next untried member of Q; false when
  // every member has been tried.
  bool TryNextSource();

  util::ProcessorSet scheme_;              // Q
  std::vector<ProcessorId> members_;       // Q in id order
  size_t next_source_ = 0;                 // retry cursor for the pending read
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_SA_PROTOCOL_H_
