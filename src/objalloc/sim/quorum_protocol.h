// QuorumNode — quorum-consensus replication with version timestamps
// (Gifford weighted voting / Thomas majority consensus, the paper's [14, 25]).
// DA resorts to this protocol when a member of its core set F fails (§2);
// it is also usable standalone as a baseline.
//
// Reads: version-query all other processors (control messages); once a read
// quorum of responses (including self) is assembled, fetch the object from
// the holder of the highest version (request + data transfer). Writes:
// version-query as an aliveness/ordering round, then push the new version to
// a write quorum. With read quorum r and write quorum w, r + w > n
// guarantees every read quorum intersects every committed write quorum, so
// version-maximum reads are always fresh.

#ifndef OBJALLOC_SIM_QUORUM_PROTOCOL_H_
#define OBJALLOC_SIM_QUORUM_PROTOCOL_H_

#include <vector>

#include "objalloc/sim/processor.h"

namespace objalloc::sim {

struct QuorumConfig {
  int read_quorum = 0;   // r; 0 = majority
  int write_quorum = 0;  // w; 0 = majority

  // Resolves defaults for an n-processor system and checks r + w > n.
  static QuorumConfig MajorityFor(int num_processors);
};

class QuorumNode : public Node {
 public:
  QuorumNode(ProcessorId id, int num_processors, Network* network,
             LocalDatabase* db, SimMetrics* metrics, QuorumConfig config);

  void HandleMessage(const Message& msg) override;
  bool OnTimeout() override;

  // A recovered quorum node keeps its (possibly stale) copy: every read
  // compares version timestamps across a quorum, so an old survivor can
  // never be served as fresh — and it remains useful as a version holder.
  void OnRecover() override {}

 protected:
  void DoStartRead() override;
  void DoStartWrite() override;

  // Shared with DaNode's failover path: answers version queries and read
  // requests statelessly.
  bool HandleQuorumMessage(const Message& msg);

  enum class Phase {
    kIdle,
    kReadScan,     // collecting version replies for a read
    kReadFetch,    // fetching the object from the freshest holder
    kWriteScan,    // collecting version replies for a write
    kRecoverScan,  // DA failover: missing-writes version scan
    kRecoverFetch, // DA failover: fetching the latest surviving version
  };

  struct VersionReply {
    ProcessorId from;
    int64_t version;
  };

  void BroadcastVersionQuery();
  // Read-scan completion: picks the freshest holder and fetches (or serves
  // locally). Returns false if the quorum cannot be assembled.
  bool FinishReadScan();
  // Write-scan completion: pushes the pending version to a write quorum.
  bool FinishWriteScan();

  QuorumConfig config_;
  Phase phase_ = Phase::kIdle;
  std::vector<VersionReply> replies_;
};

}  // namespace objalloc::sim

#endif  // OBJALLOC_SIM_QUORUM_PROTOCOL_H_
