// AdaptiveAllocation — a *convergent* (rather than competitive) dynamic
// allocator, built as an extension for the §5.1 discussion: convergent
// algorithms track the recent read-write pattern and move the allocation
// scheme toward the optimum for that pattern, excelling on regular workloads
// and degrading on chaotic ones (where DA's worst-case guarantee wins).
// It is inspired by the expansion/contraction tests of Wolfson & Jajodia
// [27, 28] but adapted to this paper's unified I/O + communication cost model
// and t-availability constraint.
//
// Mechanics (all changes flow through legal DOM decisions):
//   * A sliding window keeps per-processor read counts and the write count.
//   * Read by a non-member i: fetched remotely; converted into a saving-read
//     iff the windowed expansion test predicts a net benefit — i's reads per
//     write would save (cc + cd) each, against cio now plus cc invalidation
//     at the next write.
//   * Write by j: the new execution set keeps the members whose windowed
//     read rate justifies the (cd + cio) refresh cost, always includes j,
//     and is padded with the heaviest readers up to size t.

#ifndef OBJALLOC_CORE_ADAPTIVE_ALLOCATION_H_
#define OBJALLOC_CORE_ADAPTIVE_ALLOCATION_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_model.h"

namespace objalloc::core {

struct AdaptiveOptions {
  // Number of trailing requests whose statistics drive the tests.
  int window_size = 64;

  util::Status Validate() const {
    if (window_size <= 0) {
      return util::Status::InvalidArgument("window_size must be positive");
    }
    return util::Status::Ok();
  }
};

class AdaptiveAllocation final : public DomAlgorithm {
 public:
  AdaptiveAllocation(const model::CostModel& model, AdaptiveOptions options);

  std::string name() const override { return "Adaptive"; }
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<AdaptiveAllocation>(*this);
  }

  ProcessorSet scheme() const { return scheme_; }

 private:
  void Observe(const Request& request);
  double WindowReadsBy(ProcessorId p) const { return read_counts_[static_cast<size_t>(p)]; }

  model::CostModel model_;
  AdaptiveOptions options_;

  int num_processors_ = 0;
  int t_ = 0;
  ProcessorSet scheme_;
  std::deque<Request> window_;
  std::vector<double> read_counts_;  // per processor, within the window
  double write_count_ = 0;           // within the window
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_ADAPTIVE_ALLOCATION_H_
