#include "objalloc/core/checkpoint.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "objalloc/util/crc32.h"
#include "objalloc/util/io.h"
#include "objalloc/util/record_io.h"

namespace objalloc::core {

using util::AppendRecord;
using util::AppendScalar;
using util::PayloadReader;
using util::RecordCursor;
using util::RecordView;

std::string CheckpointFileName(uint64_t sequence) {
  return "checkpoint-" + std::to_string(sequence) + ".ckpt";
}

std::string DeltaCheckpointFileName(uint64_t sequence) {
  return "checkpoint-" + std::to_string(sequence) + ".delta";
}

util::Status DurabilityOptions::Validate() const {
  if (keep_generations < 2) {
    return util::Status::InvalidArgument(
        "keep_generations must be >= 2 (recovery falls back one snapshot)");
  }
  return retry.Validate();
}

std::string RecoveryReport::ToString() const {
  std::string out = "recovered generation " +
                    std::to_string(checkpoint_sequence) + " (manifest " +
                    std::to_string(manifest_sequence) + ")";
  if (manifest_missing) out += ", manifest missing";
  if (manifest_corrupt) out += ", manifest corrupt";
  if (fell_back) out += ", fell back to previous snapshot";
  if (delta_checkpoints_applied > 0) {
    out += ", " + std::to_string(delta_checkpoints_applied) +
           " delta snapshot(s) applied";
  }
  out += ": " + std::to_string(objects_restored) + " objects, " +
         std::to_string(wal_files_replayed) + " WAL file(s), " +
         std::to_string(records_replayed) + " records, " +
         std::to_string(batches_replayed) + " batches, " +
         std::to_string(events_replayed) + " events replayed";
  if (torn_tail) {
    out += ", torn tail truncated (" + std::to_string(torn_bytes_truncated) +
           " bytes)";
  }
  for (const std::string& warning : warnings) out += "\n  warning: " + warning;
  return out;
}

const char* ScrubVerdictName(ScrubVerdict verdict) {
  switch (verdict) {
    case ScrubVerdict::kOk:
      return "ok";
    case ScrubVerdict::kTornTail:
      return "torn-tail";
    case ScrubVerdict::kCorrupt:
      return "CORRUPT";
    case ScrubVerdict::kQuarantined:
      return "quarantined";
    case ScrubVerdict::kStray:
      return "stray";
  }
  return "?";
}

std::string ScrubReport::ToString() const {
  std::string out = "scrub: " + std::to_string(files.size()) + " file(s)";
  for (const ScrubFileReport& file : files) {
    out += "\n  " + file.name + ": " + ScrubVerdictName(file.verdict) + ", " +
           std::to_string(file.bytes) + " bytes, " +
           std::to_string(file.records) + " record(s)";
    if (!file.detail.empty()) out += " — " + file.detail;
  }
  out += recoverable ? "\nrecoverable: yes" : "\nrecoverable: NO";
  if (recoverable) {
    out += clean ? " (clean)" : " (with warnings)";
    out += "\n" + recovery.ToString();
  }
  return out;
}

void ServiceStateImage::AppendTo(std::string* out) const {
  AppendScalar<uint8_t>(faults_enabled ? 1 : 0, out);
  AppendScalar(injector_options.seed, out);
  AppendScalar(injector_options.crash_rate, out);
  AppendScalar(injector_options.recover_rate, out);
  AppendScalar(injector_options.control_loss_rate, out);
  AppendScalar(injector_options.data_loss_rate, out);
  AppendScalar(static_cast<int32_t>(injector_options.max_retries), out);
  AppendScalar(static_cast<int32_t>(injector_options.min_live), out);
  AppendScalar(static_cast<uint32_t>(schedule.size()), out);
  for (const FaultEvent& event : schedule) {
    AppendScalar(static_cast<uint64_t>(event.before_event), out);
    AppendScalar(static_cast<int32_t>(event.processor), out);
    AppendScalar(static_cast<uint8_t>(event.crash ? 1 : 0), out);
  }
  AppendScalar(injector_cursor, out);
  AppendScalar(live_mask, out);
  AppendScalar(static_cast<uint32_t>(crash_log.size()), out);
  for (const CrashRecord& record : crash_log) {
    AppendScalar(static_cast<uint64_t>(record.index), out);
    AppendScalar(static_cast<int32_t>(record.processor), out);
  }
  AppendScalar(stats.crashes, out);
  AppendScalar(stats.recoveries, out);
  AppendScalar(stats.repairs, out);
  AppendScalar(stats.replicas_added, out);
  AppendScalar(stats.lost_control, out);
  AppendScalar(stats.lost_data, out);
  AppendScalar(stats.backoff_units, out);
  AppendScalar(stats.unavailable_requests, out);
  AppendScalar(stats.rejected_batches, out);
  AppendScalar(static_cast<uint32_t>(stats.repair_latency.size()), out);
  for (const double sample : stats.repair_latency) AppendScalar(sample, out);
}

util::StatusOr<ServiceStateImage> ServiceStateImage::Parse(
    std::string_view payload) {
  PayloadReader reader(payload);
  ServiceStateImage image;
  uint8_t enabled = 0;
  int32_t max_retries = 0, min_live = 0;
  uint32_t count = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&enabled));
  image.faults_enabled = enabled != 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.injector_options.seed));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.injector_options.crash_rate));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.injector_options.recover_rate));
  OBJALLOC_RETURN_IF_ERROR(
      reader.Read(&image.injector_options.control_loss_rate));
  OBJALLOC_RETURN_IF_ERROR(
      reader.Read(&image.injector_options.data_loss_rate));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&max_retries));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&min_live));
  image.injector_options.max_retries = max_retries;
  image.injector_options.min_live = min_live;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&count));
  constexpr size_t kScheduleEntryBytes = 8 + 4 + 1;
  if (reader.remaining() < static_cast<size_t>(count) * kScheduleEntryBytes) {
    return util::Status::Internal("service state: schedule truncated");
  }
  image.schedule.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t before_event = 0;
    int32_t processor = 0;
    uint8_t crash = 0;
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&before_event));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&processor));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&crash));
    image.schedule.push_back(
        FaultEvent{static_cast<size_t>(before_event), processor, crash != 0});
  }
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.injector_cursor));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.live_mask));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&count));
  constexpr size_t kCrashRecordBytes = 8 + 4;
  if (reader.remaining() < static_cast<size_t>(count) * kCrashRecordBytes) {
    return util::Status::Internal("service state: crash log truncated");
  }
  image.crash_log.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t index = 0;
    int32_t processor = 0;
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&index));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&processor));
    image.crash_log.push_back(
        CrashRecord{static_cast<size_t>(index), processor});
  }
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.crashes));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.recoveries));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.repairs));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.replicas_added));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.lost_control));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.lost_data));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.backoff_units));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.unavailable_requests));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&image.stats.rejected_batches));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&count));
  if (reader.remaining() != static_cast<size_t>(count) * sizeof(double)) {
    return util::Status::Internal("service state: latency samples truncated");
  }
  image.stats.repair_latency.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    double sample = 0;
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&sample));
    image.stats.repair_latency.push_back(sample);
  }
  return image;
}

util::Status WriteManifest(const std::string& dir, const Manifest& manifest) {
  std::string payload;
  AppendScalar(kManifestMagic, &payload);
  AppendScalar(kDurabilityFormatVersion, &payload);
  AppendScalar(manifest.sequence, &payload);
  manifest.config.AppendTo(&payload);
  // Trailing so pre-delta manifests (which end at the config) still parse.
  AppendScalar(
      manifest.base_sequence == 0 ? manifest.sequence : manifest.base_sequence,
      &payload);
  std::string framed;
  AppendRecord(static_cast<uint8_t>(CheckpointRecordType::kManifest), payload,
               &framed);
  return util::WriteFileAtomic(dir + "/" + kManifestFileName, framed);
}

util::StatusOr<Manifest> ReadManifest(const std::string& dir) {
  auto buffer = util::ReadFileToString(dir + "/" + kManifestFileName);
  if (!buffer.ok()) return buffer.status();
  RecordCursor cursor(*buffer);
  RecordView record;
  if (!cursor.Next(&record)) {
    if (!cursor.status().ok()) return cursor.status();
    return util::Status::Internal("manifest: empty or truncated");
  }
  if (record.type != static_cast<uint8_t>(CheckpointRecordType::kManifest)) {
    return util::Status::Internal("manifest: unexpected record type");
  }
  PayloadReader reader(record.payload);
  uint32_t magic = 0, version = 0;
  Manifest manifest;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic != kManifestMagic) {
    return util::Status::Internal("manifest: bad magic");
  }
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&version));
  if (version < kMinDurabilityFormatVersion ||
      version > kDurabilityFormatVersion) {
    return util::Status::Internal("manifest: unsupported format version " +
                                  std::to_string(version));
  }
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&manifest.sequence));
  auto config = DurableConfig::Parse(&reader);
  if (!config.ok()) return config.status();
  manifest.config = *config;
  if (manifest.sequence == 0) {
    return util::Status::Internal("manifest: zero sequence");
  }
  if (reader.exhausted()) {
    manifest.base_sequence = manifest.sequence;  // pre-delta manifest
  } else {
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&manifest.base_sequence));
    if (manifest.base_sequence == 0 ||
        manifest.base_sequence > manifest.sequence) {
      return util::Status::Internal("manifest: bad base sequence");
    }
  }
  return manifest;
}

void BeginCheckpoint(uint64_t sequence, const DurableConfig& config,
                     std::string* out, uint32_t version) {
  std::string payload;
  AppendScalar(kCheckpointMagic, &payload);
  AppendScalar(version, &payload);
  AppendScalar(sequence, &payload);
  config.AppendTo(&payload);
  AppendRecord(static_cast<uint8_t>(CheckpointRecordType::kCkptHeader),
               payload, out);
}

void BeginDeltaCheckpoint(uint64_t sequence, uint64_t parent,
                          const DurableConfig& config, std::string* out,
                          uint32_t version) {
  std::string payload;
  AppendScalar(kCheckpointMagic, &payload);
  AppendScalar(version, &payload);
  AppendScalar(sequence, &payload);
  AppendScalar(parent, &payload);
  config.AppendTo(&payload);
  AppendRecord(static_cast<uint8_t>(CheckpointRecordType::kDeltaHeader),
               payload, out);
}

void AppendServiceStateRecord(const ServiceStateImage& image,
                              std::string* out) {
  std::string payload;
  image.AppendTo(&payload);
  AppendRecord(static_cast<uint8_t>(CheckpointRecordType::kServiceState),
               payload, out);
}

void AppendShardRecord(std::string_view shard_payload, std::string* out) {
  AppendRecord(static_cast<uint8_t>(CheckpointRecordType::kShard),
               shard_payload, out);
}

void AppendShardChunkRecord(uint32_t shard_index, bool last,
                            std::string_view bytes, std::string* out) {
  std::string payload;
  payload.reserve(8 + bytes.size());
  AppendScalar(shard_index, &payload);
  AppendScalar<uint32_t>(last ? 1 : 0, &payload);
  payload.append(bytes.data(), bytes.size());
  AppendRecord(static_cast<uint8_t>(CheckpointRecordType::kShardChunk),
               payload, out);
}

void FinishCheckpoint(uint32_t shard_count, std::string* out) {
  std::string payload;
  AppendScalar(shard_count, &payload);
  AppendRecord(static_cast<uint8_t>(CheckpointRecordType::kCkptFooter),
               payload, out);
}

util::StatusOr<CheckpointWriter> CheckpointWriter::Open(
    const std::string& path, uint64_t sequence, const DurableConfig& config) {
  auto file = util::AtomicFileWriter::Open(path);
  if (!file.ok()) return file.status();
  CheckpointWriter writer;
  writer.file_ = std::move(*file);
  writer.record_.clear();
  BeginCheckpoint(sequence, config, &writer.record_);
  OBJALLOC_RETURN_IF_ERROR(writer.file_.Append(writer.record_));
  return writer;
}

util::StatusOr<CheckpointWriter> CheckpointWriter::OpenDelta(
    const std::string& path, uint64_t sequence, uint64_t parent,
    const DurableConfig& config) {
  auto file = util::AtomicFileWriter::Open(path);
  if (!file.ok()) return file.status();
  CheckpointWriter writer;
  writer.file_ = std::move(*file);
  writer.record_.clear();
  BeginDeltaCheckpoint(sequence, parent, config, &writer.record_);
  OBJALLOC_RETURN_IF_ERROR(writer.file_.Append(writer.record_));
  return writer;
}

util::Status CheckpointWriter::AppendServiceState(
    const ServiceStateImage& image) {
  record_.clear();
  AppendServiceStateRecord(image, &record_);
  return file_.Append(record_);
}

void CheckpointWriter::BeginShard(uint32_t shard_index) {
  OBJALLOC_CHECK(!shard_open_) << "BeginShard while a shard is open";
  shard_index_ = shard_index;
  shard_open_ = true;
  chunk_.clear();
}

util::Status CheckpointWriter::AppendShardBytes(std::string_view bytes) {
  OBJALLOC_CHECK(shard_open_) << "AppendShardBytes outside BeginShard";
  chunk_.append(bytes.data(), bytes.size());
  if (chunk_.size() >= kChunkBytes) return FlushChunk(/*last=*/false);
  return util::Status::Ok();
}

util::Status CheckpointWriter::EndShard() {
  OBJALLOC_CHECK(shard_open_) << "EndShard without BeginShard";
  // Always emitted, even with zero pending bytes: the last flag is what
  // tells the reader (and the restoring shard) the payload is complete.
  util::Status status = FlushChunk(/*last=*/true);
  shard_open_ = false;
  return status;
}

util::Status CheckpointWriter::FlushChunk(bool last) {
  record_.clear();
  AppendShardChunkRecord(shard_index_, last, chunk_, &record_);
  chunk_.clear();
  return file_.Append(record_);
}

util::Status CheckpointWriter::Finish(uint32_t shard_count) {
  OBJALLOC_CHECK(!shard_open_) << "Finish with an open shard";
  record_.clear();
  FinishCheckpoint(shard_count, &record_);
  OBJALLOC_RETURN_IF_ERROR(file_.Append(record_));
  return file_.Commit();
}

namespace {

// Upper bound a single checkpoint record may declare before the CRC check
// runs (mirrors record_io's cap): a v1 monolithic shard record is the
// largest legitimate payload.
constexpr uint32_t kMaxCheckpointPayload = 1u << 30;

}  // namespace

util::StatusOr<CheckpointReader> CheckpointReader::Open(
    const std::string& path) {
  auto file = util::FileReader::Open(path);
  if (!file.ok()) return file.status();
  CheckpointReader reader;
  reader.file_ = std::move(*file);
  uint8_t type = 0;
  bool eof = false;
  OBJALLOC_RETURN_IF_ERROR(reader.ReadRecord(&type, &eof));
  if (eof ||
      (type != static_cast<uint8_t>(CheckpointRecordType::kCkptHeader) &&
       type != static_cast<uint8_t>(CheckpointRecordType::kDeltaHeader))) {
    return util::Status::Internal("checkpoint: missing header record");
  }
  reader.is_delta_ =
      type == static_cast<uint8_t>(CheckpointRecordType::kDeltaHeader);
  PayloadReader payload(reader.payload_);
  uint32_t magic = 0;
  OBJALLOC_RETURN_IF_ERROR(payload.Read(&magic));
  if (magic != kCheckpointMagic) {
    return util::Status::Internal("checkpoint: bad magic");
  }
  OBJALLOC_RETURN_IF_ERROR(payload.Read(&reader.version_));
  if (reader.version_ < kMinDurabilityFormatVersion ||
      reader.version_ > kDurabilityFormatVersion) {
    return util::Status::Internal("checkpoint: unsupported format version " +
                                  std::to_string(reader.version_));
  }
  OBJALLOC_RETURN_IF_ERROR(payload.Read(&reader.sequence_));
  if (reader.is_delta_) {
    OBJALLOC_RETURN_IF_ERROR(payload.Read(&reader.parent_));
    if (reader.parent_ == 0 || reader.parent_ >= reader.sequence_) {
      return util::Status::Internal(
          "checkpoint: delta names an impossible parent generation");
    }
  }
  auto config = DurableConfig::Parse(&payload);
  if (!config.ok()) return config.status();
  reader.config_ = *config;
  return reader;
}

util::Status CheckpointReader::ReadRecord(uint8_t* type, bool* eof) {
  char header[util::kRecordHeaderSize];
  OBJALLOC_RETURN_IF_ERROR(
      file_.ReadExact(header, util::kRecordHeaderSize, eof));
  if (*eof) return util::Status::Ok();
  uint32_t length = 0, crc = 0;
  std::memcpy(&length, header, 4);
  std::memcpy(&crc, header + 8, 4);
  if (length > kMaxCheckpointPayload) {
    return util::Status::Internal(
        "checkpoint: record declares absurd length " + std::to_string(length));
  }
  payload_.resize(length);
  // A short payload here is corruption, not a torn tail: checkpoints are
  // published by atomic rename, whole or not at all.
  bool torn = false;
  OBJALLOC_RETURN_IF_ERROR(file_.ReadExact(payload_.data(), length, &torn));
  if (torn && length > 0) {
    return util::Status::Internal("checkpoint: truncated record payload");
  }
  uint32_t actual = util::Crc32(header, 8);
  actual = util::Crc32(payload_.data(), payload_.size(), actual);
  if (actual != crc) {
    return util::Status::Internal("checkpoint: record failed its CRC check");
  }
  *type = header[4] & 0xFF;
  return util::Status::Ok();
}

util::Status CheckpointReader::Next(Piece* piece) {
  *piece = Piece();
  uint8_t type = 0;
  bool eof = false;
  OBJALLOC_RETURN_IF_ERROR(ReadRecord(&type, &eof));
  if (eof) {
    return util::Status::Internal("checkpoint: missing footer record");
  }
  if (!saw_state_) {
    if (type != static_cast<uint8_t>(CheckpointRecordType::kServiceState)) {
      return util::Status::Internal(
          "checkpoint: missing service state record");
    }
    auto state = ServiceStateImage::Parse(payload_);
    if (!state.ok()) return state.status();
    saw_state_ = true;
    piece->service_state = true;
    piece->state = std::move(*state);
    return util::Status::Ok();
  }
  if (type == static_cast<uint8_t>(CheckpointRecordType::kShard)) {
    // v1 monolithic shard record: one whole-payload chunk. Accepted at any
    // version so old-format snapshots restore through this same reader.
    if (shard_open_) {
      return util::Status::Internal(
          "checkpoint: shard record inside a chunked shard");
    }
    piece->shard = next_shard_++;
    piece->last = true;
    piece->bytes = payload_;
    return util::Status::Ok();
  }
  if (type == static_cast<uint8_t>(CheckpointRecordType::kShardChunk)) {
    if (payload_.size() < 8) {
      return util::Status::Internal("checkpoint: short shard chunk record");
    }
    uint32_t shard = 0, flags = 0;
    std::memcpy(&shard, payload_.data(), 4);
    std::memcpy(&flags, payload_.data() + 4, 4);
    const uint32_t expected = shard_open_ ? next_shard_ - 1 : next_shard_;
    if (shard != expected) {
      return util::Status::Internal(
          "checkpoint: shard chunk out of order (names shard " +
          std::to_string(shard) + ", expected " + std::to_string(expected) +
          ")");
    }
    if (!shard_open_) {
      shard_open_ = true;
      ++next_shard_;
    }
    piece->shard = shard;
    piece->last = (flags & 1) != 0;
    piece->bytes = std::string_view(payload_).substr(8);
    if (piece->last) shard_open_ = false;
    return util::Status::Ok();
  }
  if (type == static_cast<uint8_t>(CheckpointRecordType::kCkptFooter)) {
    if (shard_open_) {
      return util::Status::Internal(
          "checkpoint: footer inside a chunked shard");
    }
    PayloadReader payload(payload_);
    uint32_t footer_count = 0;
    OBJALLOC_RETURN_IF_ERROR(payload.Read(&footer_count));
    if (footer_count != next_shard_) {
      return util::Status::Internal(
          "checkpoint: footer shard count mismatch (footer says " +
          std::to_string(footer_count) + ", found " +
          std::to_string(next_shard_) + ")");
    }
    if (next_shard_ != static_cast<uint32_t>(config_.num_shards)) {
      return util::Status::Internal(
          "checkpoint: shard record count does not match the config");
    }
    // Nothing may follow the footer.
    uint8_t trailing = 0;
    bool at_end = false;
    OBJALLOC_RETURN_IF_ERROR(ReadRecord(&trailing, &at_end));
    if (!at_end) {
      return util::Status::Internal("checkpoint: record after the footer");
    }
    piece->done = true;
    return util::Status::Ok();
  }
  return util::Status::Internal("checkpoint: unexpected record type " +
                                std::to_string(int{type}));
}

namespace {

util::StatusOr<std::vector<uint64_t>> ListSequencesWithSuffix(
    const std::string& dir, std::string_view suffix) {
  auto names = util::ListDir(dir);
  if (!names.ok()) return names.status();
  constexpr std::string_view kPrefix = "checkpoint-";
  std::vector<uint64_t> sequences;
  for (const std::string& name : *names) {
    if (name.size() <= kPrefix.size() + suffix.size()) continue;
    if (name.compare(0, kPrefix.size(), kPrefix) != 0) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix.data(), suffix.size()) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - suffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    char* end = nullptr;
    const uint64_t sequence = std::strtoull(digits.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || sequence == 0) continue;
    sequences.push_back(sequence);
  }
  std::sort(sequences.begin(), sequences.end());
  return sequences;
}

}  // namespace

util::StatusOr<std::vector<uint64_t>> ListCheckpointSequences(
    const std::string& dir) {
  return ListSequencesWithSuffix(dir, ".ckpt");
}

util::StatusOr<std::vector<uint64_t>> ListDeltaCheckpointSequences(
    const std::string& dir) {
  return ListSequencesWithSuffix(dir, ".delta");
}

}  // namespace objalloc::core
