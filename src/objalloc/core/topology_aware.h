// TopologyAwareAllocation — DA generalized for heterogeneous networks
// (§6's "extension to other models"): identical scheme dynamics (core set F,
// floating member, saving-reads, write-all-to-F invalidation), but
//   * the core set F is placed on the topologically most *central*
//     processors of the initial scheme (minimum total message multiplier to
//     the rest of the system), and
//   * a non-member read fetches from the *nearest* current scheme member
//     rather than from an arbitrary member of F.
//
// On a uniform topology every choice costs the same, so the algorithm
// degenerates to DA exactly (the tests check cost equality); on clustered
// or star networks it avoids the expensive links whenever a nearby replica
// exists.

#ifndef OBJALLOC_CORE_TOPOLOGY_AWARE_H_
#define OBJALLOC_CORE_TOPOLOGY_AWARE_H_

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/topology.h"

namespace objalloc::core {

class TopologyAwareAllocation final : public DomAlgorithm {
 public:
  explicit TopologyAwareAllocation(model::NetworkTopology topology);

  std::string name() const override { return "TopoDA"; }
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<TopologyAwareAllocation>(*this);
  }

  ProcessorSet core_set() const { return f_; }
  ProcessorId floating_processor() const { return p_; }
  ProcessorSet scheme() const { return scheme_; }

 private:
  // Sum of message multipliers from `candidate` to every other processor.
  double Centrality(ProcessorId candidate) const;
  ProcessorId NearestSchemeMember(ProcessorId reader) const;

  model::NetworkTopology topology_;
  ProcessorSet f_;
  ProcessorId p_ = -1;
  ProcessorSet scheme_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_TOPOLOGY_AWARE_H_
