#include "objalloc/core/static_allocation.h"

#include "objalloc/util/logging.h"

namespace objalloc::core {

void StaticAllocation::Reset(int num_processors, ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(!initial_scheme.Empty());
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)));
  scheme_ = initial_scheme;
}

Decision StaticAllocation::Step(const Request& request) {
  OBJALLOC_CHECK(!scheme_.Empty()) << "Step before Reset";
  if (request.is_write()) {
    return Decision{scheme_, false};
  }
  if (scheme_.Contains(request.processor)) {
    return Decision{ProcessorSet::Singleton(request.processor), false};
  }
  // SAOS picks an arbitrary member of Q; we pick the smallest id so runs are
  // deterministic.
  return Decision{ProcessorSet::Singleton(scheme_.First()), false};
}

}  // namespace objalloc::core
