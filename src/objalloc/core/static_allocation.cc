#include "objalloc/core/static_allocation.h"

#include "objalloc/util/logging.h"

namespace objalloc::core {

void StaticAllocation::Reset(int num_processors, ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(!initial_scheme.Empty());
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)));
  scheme_ = initial_scheme;
}

Decision StaticAllocation::Step(const Request& request) {
  OBJALLOC_CHECK(!scheme_.Empty()) << "Step before Reset";
  return Decide(scheme_, request);
}

}  // namespace objalloc::core
