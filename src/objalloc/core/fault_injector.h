// FaultInjector — deterministic chaos for the serving engine (DESIGN.md §9).
//
// The paper's defining constraint is t-availability: every request must
// leave at least t replicas of the latest version alive (§2). The offline
// simulator has modeled processor death since the seed (sim/failure.h); this
// injector brings the same scenarios to the high-throughput ObjectService
// without giving up its determinism contract.
//
// Every fault is a pure function of (seed, global event index): crash and
// recover draws, victim selection, and per-message loss draws are all keyed
// by the *admission-stream position* of the event through a stateless
// splitmix64 finalizer chain — never by a sequential RNG consumed in serving
// order. Because the admission pass walks events in submission order on one
// thread, the liveness history (and therefore every repair, retransmission
// and rejection) is bit-identical at any shard count x thread count, the
// same bar as the fault-free engine (DESIGN.md §7).
//
// Two fault sources compose:
//   * a scripted FaultSchedule — crash/recover events pinned to event
//     indices, the service-side twin of sim::FailurePlan (the adapter in
//     sim/failure.h maps one to the other field for field, enabling
//     count-for-count crosschecks between simulator and service), and
//   * seeded random rates — per-event crash/recover probabilities with a
//     min_live floor, plus independent control/data message-loss rates.
//
// Message loss is charged, not silently absorbed: each lost transmission is
// retried (one extra message of the same type in the cost accounting) up to
// max_retries, with exponential backoff accounted in virtual time units
// (2^attempt per failed attempt). The retry bound models the network
// healing: after max_retries the transmission goes through, keeping the
// serve function total — and, crucially, keeping cost a pure function of
// (seed, index).

#ifndef OBJALLOC_CORE_FAULT_INJECTOR_H_
#define OBJALLOC_CORE_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "objalloc/util/processor_set.h"
#include "objalloc/util/status.h"

namespace objalloc::core {

// One scripted fault, the service-side twin of sim::FailureEvent: fires
// immediately before the event with admission-stream index `before_event`.
struct FaultEvent {
  size_t before_event = 0;
  util::ProcessorId processor = 0;
  bool crash = true;  // false = recover

  static FaultEvent Crash(size_t before_event, util::ProcessorId p) {
    return FaultEvent{before_event, p, true};
  }
  static FaultEvent Recover(size_t before_event, util::ProcessorId p) {
    return FaultEvent{before_event, p, false};
  }
};

// Must be sorted by before_event (ties fire in vector order). Crash of an
// already-crashed processor and recover of a live one are no-ops, which
// makes replaying a rejected batch's window idempotent.
using FaultSchedule = std::vector<FaultEvent>;

// One applied crash, recorded at its fault-time index. The service keeps an
// append-only log of these (nondecreasing index) and every object slot
// remembers its position in it: at an object's next event, members crashed
// since its previous event are dropped *exactly in that window*, which is
// what makes scheme state a pure function of per-object event order even
// when a member joins and crashes within one batch. Recovery never removes
// a record — a crashed copy is stale regardless of later recovery.
struct CrashRecord {
  size_t index = 0;
  util::ProcessorId processor = 0;
};
using CrashLog = std::vector<CrashRecord>;

struct FaultInjectorOptions {
  uint64_t seed = 0;
  // Per-event probability that one live processor crashes / one crashed
  // processor recovers before the event.
  double crash_rate = 0;
  double recover_rate = 0;
  // Per-transmission loss probability for control / data messages.
  double control_loss_rate = 0;
  double data_loss_rate = 0;
  // Retry bound per transmission; the network is modeled as healed after
  // this many consecutive losses (keeps serving total and deterministic).
  int max_retries = 6;
  // Random crashes never take the live count below this floor (scripted
  // events and manual Crash() calls are the caller's responsibility and may
  // go lower — that is exactly the degraded-admission scenario).
  int min_live = 1;

  util::Status Validate(int num_processors) const;
};

// Per-service fault accounting. Integer counts merged per shard in fixed
// shard order, so totals are deterministic like the cost breakdowns.
struct FaultStats {
  int64_t crashes = 0;             // crash events applied
  int64_t recoveries = 0;          // recover events applied
  int64_t repairs = 0;             // repair episodes (scheme re-replication)
  int64_t replicas_added = 0;      // copies re-created by repairs
  int64_t lost_control = 0;        // control transmissions lost (retried)
  int64_t lost_data = 0;           // data transmissions lost (retried)
  int64_t backoff_units = 0;       // sum of 2^attempt over failed attempts
  int64_t unavailable_requests = 0;  // events refused (issuer crashed)
  int64_t rejected_batches = 0;      // batches refused (< t live)
  // One virtual-latency sample per repair episode: two message hops per
  // replica created plus the exponential backoff spent retransmitting them.
  // Appended in deterministic (shard-merge) order; consumed by
  // bench/availability_chaos for repair-latency percentiles.
  std::vector<double> repair_latency;

  FaultStats& operator+=(const FaultStats& other);
};

class FaultInjector {
 public:
  // `options` must validate against `num_processors` and `schedule` must be
  // sorted with in-range processors; both are checked fatally here —
  // ObjectService::EnableFaults is the Status-returning boundary.
  FaultInjector(int num_processors, const FaultInjectorOptions& options,
                FaultSchedule schedule = {});

  const FaultInjectorOptions& options() const { return options_; }
  const FaultSchedule& schedule() const { return schedule_; }

  // Next admission-stream index (one per event ever presented, including
  // events of rejected batches: fault time moves forward monotonically, so
  // a rejected batch can be replayed against a recovered world).
  size_t cursor() const { return cursor_; }

  // Restores the injector to admission-stream position `cursor` (durability
  // recovery): scheduled events whose windows were consumed before that
  // position are skipped, so the next CollectFaults call behaves exactly as
  // it would have in the original run. Draws are stateless functions of
  // (seed, index), so no other state needs restoring.
  void FastForward(size_t cursor);

  // Appends the fault events due before index `cursor()` — scheduled events
  // first (in schedule order), then at most one random crash and one random
  // recover draw — and advances the cursor. `live` is the current live set
  // (random victim selection is state-dependent but deterministic).
  void CollectFaults(util::ProcessorSet live, std::vector<FaultEvent>* out);

  // True when any message-loss rate is positive (lets the serve path skip
  // all per-message draws otherwise).
  bool has_message_loss() const {
    return options_.control_loss_rate > 0 || options_.data_loss_rate > 0;
  }

  // Number of lost transmissions (0..max_retries) before the `ordinal`-th
  // message of event `index` goes through. Stateless and const: safe to
  // call from parallel shard workers.
  int ControlRetries(size_t index, uint32_t ordinal) const {
    return Retries(options_.control_loss_rate, kControlStream, index, ordinal);
  }
  int DataRetries(size_t index, uint32_t ordinal) const {
    return Retries(options_.data_loss_rate, kDataStream, index, ordinal);
  }

  // Validates a scripted schedule: sorted by before_event, processors in
  // [0, num_processors).
  static util::Status ValidateSchedule(const FaultSchedule& schedule,
                                       int num_processors);

 private:
  // Distinct draw streams so crash, recover, victim and loss sampling are
  // independent for the same (seed, index).
  static constexpr uint64_t kCrashStream = 0x11;
  static constexpr uint64_t kRecoverStream = 0x22;
  static constexpr uint64_t kCrashVictimStream = 0x33;
  static constexpr uint64_t kRecoverVictimStream = 0x44;
  static constexpr uint64_t kControlStream = 0x55;
  static constexpr uint64_t kDataStream = 0x66;

  uint64_t Hash(uint64_t stream, uint64_t index, uint64_t ordinal) const;
  static double UnitDouble(uint64_t h) {
    return static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  int Retries(double rate, uint64_t stream, size_t index,
              uint32_t ordinal) const;

  int num_processors_;
  FaultInjectorOptions options_;
  FaultSchedule schedule_;
  size_t next_scheduled_ = 0;
  size_t cursor_ = 0;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_FAULT_INJECTOR_H_
