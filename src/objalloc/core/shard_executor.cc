#include "objalloc/core/shard_executor.h"

#include <algorithm>

#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"

namespace objalloc::core {

ShardExecutor::ShardExecutor(ObjectShard* shards, size_t num_shards,
                             int num_workers, size_t depth)
    : shards_(shards), num_shards_(num_shards) {
  OBJALLOC_CHECK_GE(num_shards, size_t{1});
  OBJALLOC_CHECK_GE(num_workers, 1);
  OBJALLOC_CHECK_GE(depth, size_t{1});
  const size_t workers =
      std::min(static_cast<size_t>(num_workers), num_shards);

  // Queue capacity == pipeline depth: each context contributes at most one
  // task per shard and at most `depth` contexts exist, so TryPush can never
  // find a full ring (asserted in Submit).
  queues_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    queues_.push_back(std::make_unique<util::SpscQueue<ShardTask>>(depth));
  }

  contexts_.reserve(depth);
  for (size_t c = 0; c < depth; ++c) {
    auto context = std::make_unique<BatchContext>();
    context->ops.resize(num_shards);
    context->deltas.resize(num_shards);
    context->fault_stats.resize(num_shards);
    contexts_.push_back(std::move(context));
  }

  shard_owner_.resize(num_shards);
  wake_scratch_.assign(workers, 0);
  workers_.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    auto worker = std::make_unique<Worker>();
    worker->begin = num_shards * w / workers;
    worker->end = num_shards * (w + 1) / workers;
    for (size_t s = worker->begin; s < worker->end; ++s) {
      shard_owner_[s] = static_cast<uint32_t>(w);
    }
    workers_.push_back(std::move(worker));
  }
  // Spawn only after every Worker is constructed: a worker thread never
  // observes a half-built executor.
  for (auto& worker : workers_) {
    Worker* w = worker.get();
    w->thread = std::thread([this, w] { WorkerLoop(w); });
  }
}

ShardExecutor::~ShardExecutor() {
  DrainAll();
  stop_.store(true, std::memory_order_release);
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      ++worker->epoch;
    }
    worker->wake.notify_one();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

uint32_t ShardExecutor::Acquire() {
  const uint32_t index = next_context_;
  next_context_ =
      (next_context_ + 1) % static_cast<uint32_t>(contexts_.size());
  Wait(index);
  BatchContext& context = *contexts_[index];
  context.sequence = next_sequence_++;
  for (std::vector<ShardOp>& ops : context.ops) ops.clear();
  std::fill(context.deltas.begin(), context.deltas.end(),
            model::CostBreakdown());
  context.costs = nullptr;
  context.live_masks = nullptr;
  context.crash_log = nullptr;
  context.injector = nullptr;
  context.base_index = 0;
  context.faulty = false;
  context.check_invariant = false;
  return index;
}

void ShardExecutor::Submit(uint32_t context_index) {
  BatchContext& context = *contexts_[context_index];
  uint32_t tasks = 0;
  uint64_t total_ops = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    if (!context.ops[s].empty()) {
      ++tasks;
      total_ops += context.ops[s].size();
    }
  }
  if (tasks == 0) return;  // nothing to do: in_flight stays false
  queued_ops_.fetch_add(total_ops, std::memory_order_relaxed);
  inflight_batches_.fetch_add(1, std::memory_order_relaxed);

  // Completion state before the first push: a worker that races through its
  // sub-batch immediately still decrements from the full count.
  context.pending.store(tasks, std::memory_order_relaxed);
  context.in_flight.store(true, std::memory_order_relaxed);

  std::fill(wake_scratch_.begin(), wake_scratch_.end(), 0);
  for (size_t s = 0; s < num_shards_; ++s) {
    if (context.ops[s].empty()) continue;
    const bool pushed = queues_[s]->TryPush(
        ShardTask{context_index, static_cast<uint32_t>(s)});
    OBJALLOC_CHECK(pushed) << "shard queue " << s
                           << " full despite depth-bounded contexts";
    wake_scratch_[shard_owner_[s]] = 1;
  }
  // One wake per receiving worker, after all of its tasks are visible. The
  // epoch bump is under the worker's mutex, so a worker that just found its
  // rings empty either sees the bump before sleeping or is woken by the
  // notify — never a lost wake-up.
  for (size_t w = 0; w < workers_.size(); ++w) {
    if (!wake_scratch_[w]) continue;
    Worker& worker = *workers_[w];
    {
      std::lock_guard<std::mutex> lock(worker.mutex);
      ++worker.epoch;
    }
    worker.wake.notify_one();
  }
}

void ShardExecutor::Wait(uint32_t context_index) {
  BatchContext& context = *contexts_[context_index];
  if (!context.in_flight.load(std::memory_order_acquire)) return;
  std::unique_lock<std::mutex> lock(done_mutex_);
  done_.wait(lock, [&context] {
    return !context.in_flight.load(std::memory_order_acquire);
  });
}

bool ShardExecutor::HasInflight() const {
  for (const auto& context : contexts_) {
    if (context->in_flight.load(std::memory_order_acquire)) return true;
  }
  return false;
}

void ShardExecutor::DrainAll() {
  for (uint32_t c = 0; c < static_cast<uint32_t>(contexts_.size()); ++c) {
    Wait(c);
  }
}

void ShardExecutor::WorkerLoop(Worker* worker) {
  // Long-lived workers *are* the parallelism: anything they call (shard
  // serve paths, future per-shard maintenance) must not fan out again, so
  // they count as pool workers for ParallelFor's nested-serial rule.
  util::MarkParallelWorker();
  uint64_t seen_epoch = 0;
  for (;;) {
    bool served_any = false;
    for (size_t s = worker->begin; s < worker->end; ++s) {
      ShardTask task;
      while (queues_[s]->TryPop(&task)) {
        RunTask(task.context, task.shard);
        served_any = true;
      }
    }
    if (served_any) continue;  // re-sweep: pipelined work may have landed
    std::unique_lock<std::mutex> lock(worker->mutex);
    if (worker->epoch != seen_epoch) {
      // A producer enqueued since the sweep started; its pushes happened
      // before the bump we just observed, so the next sweep finds them.
      seen_epoch = worker->epoch;
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) return;
    worker->wake.wait(lock, [this, worker, seen_epoch] {
      return worker->epoch != seen_epoch ||
             stop_.load(std::memory_order_acquire);
    });
    seen_epoch = worker->epoch;
  }
}

void ShardExecutor::RunTask(uint32_t context_index, uint32_t shard_index) {
  BatchContext& context = *contexts_[context_index];
  ObjectShard& shard = shards_[shard_index];
  model::CostBreakdown& delta = context.deltas[shard_index];
  const std::vector<ShardOp>& ops = context.ops[shard_index];
  if (!context.faulty) {
    for (const ShardOp& op : ops) {
      context.costs[op.index] = shard.ServeSlot(op.slot, op.request, &delta);
    }
  } else {
    FaultStats& stats = context.fault_stats[shard_index];
    for (const ShardOp& op : ops) {
      context.costs[op.index] = shard.ServeSlotFaulty(
          op.slot, op.request, context.base_index + op.index,
          context.live_masks[op.index], *context.crash_log, *context.injector,
          &delta, &stats, context.check_invariant);
    }
  }
  queued_ops_.fetch_sub(ops.size(), std::memory_order_relaxed);
  // Last sub-batch completes the batch. The acq_rel decrement chains every
  // worker's writes into the final release of in_flight, which Wait's
  // acquire load picks up — the submitter then reads all shard results.
  if (context.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    inflight_batches_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(done_mutex_);
    context.in_flight.store(false, std::memory_order_release);
    done_.notify_all();
  }
}

}  // namespace objalloc::core
