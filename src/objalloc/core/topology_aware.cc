#include "objalloc/core/topology_aware.h"

#include <limits>

#include "objalloc/util/logging.h"

namespace objalloc::core {

TopologyAwareAllocation::TopologyAwareAllocation(
    model::NetworkTopology topology)
    : topology_(std::move(topology)) {}

double TopologyAwareAllocation::Centrality(ProcessorId candidate) const {
  double total = 0;
  for (ProcessorId other = 0; other < topology_.num_processors(); ++other) {
    if (other == candidate) continue;
    total += topology_.MessageMultiplier(candidate, other);
  }
  return total;
}

void TopologyAwareAllocation::Reset(int num_processors,
                                    ProcessorSet initial_scheme) {
  OBJALLOC_CHECK_EQ(num_processors, topology_.num_processors());
  OBJALLOC_CHECK_GE(initial_scheme.Size(), 2)
      << "needs t >= 2, like DynamicAllocation";
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)));
  // The floating member is the least central processor of the initial
  // scheme: F — which every write must refresh — stays on the cheap links.
  // Ties resolve to the largest id, matching DynamicAllocation's split so
  // the uniform topology degenerates to DA exactly.
  ProcessorId least_central = initial_scheme.First();
  double worst = -1;
  for (ProcessorId member : initial_scheme) {
    double score = Centrality(member);
    if (score >= worst) {
      worst = score;
      least_central = member;
    }
  }
  p_ = least_central;
  f_ = initial_scheme.WithErased(p_);
  scheme_ = initial_scheme;
}

ProcessorId TopologyAwareAllocation::NearestSchemeMember(
    ProcessorId reader) const {
  ProcessorId best = scheme_.First();
  double best_cost = std::numeric_limits<double>::infinity();
  for (ProcessorId member : scheme_) {
    double cost = topology_.MessageMultiplier(reader, member);
    if (cost < best_cost) {
      best_cost = cost;
      best = member;
    }
  }
  return best;
}

Decision TopologyAwareAllocation::Step(const Request& request) {
  OBJALLOC_CHECK(!f_.Empty()) << "Step before Reset";
  const ProcessorId i = request.processor;
  if (request.is_read()) {
    if (scheme_.Contains(i)) {
      return Decision{ProcessorSet::Singleton(i), false};
    }
    ProcessorId source = NearestSchemeMember(i);
    scheme_.Insert(i);
    return Decision{ProcessorSet::Singleton(source), true};
  }
  ProcessorSet x = (f_.Contains(i) || i == p_) ? f_.WithInserted(p_)
                                               : f_.WithInserted(i);
  scheme_ = x;
  return Decision{x, false};
}

}  // namespace objalloc::core
