#include "objalloc/core/lookahead_allocation.h"

#include <algorithm>

#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/logging.h"

namespace objalloc::core {

LookaheadAllocation::LookaheadAllocation(const model::CostModel& cost_model,
                                         int lookahead)
    : cost_model_(cost_model), lookahead_(lookahead) {
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
  OBJALLOC_CHECK_GE(lookahead, 1);
}

void LookaheadAllocation::Prime(const model::Schedule& schedule) {
  primed_ = &schedule;
  position_ = 0;
}

std::string LookaheadAllocation::name() const {
  return "Lookahead(" + std::to_string(lookahead_) + ")";
}

void LookaheadAllocation::Reset(int num_processors,
                                ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(primed_ != nullptr) << "Prime() before Reset()";
  OBJALLOC_CHECK_EQ(primed_->num_processors(), num_processors);
  OBJALLOC_CHECK(!initial_scheme.Empty());
  position_ = 0;
  t_ = initial_scheme.Size();
  scheme_ = initial_scheme;
}

Decision LookaheadAllocation::Step(const Request& request) {
  OBJALLOC_CHECK(primed_ != nullptr && position_ < primed_->size())
      << "stepped past the primed schedule";
  const Request& expected = (*primed_)[position_];
  OBJALLOC_CHECK(expected == request)
      << "driver replayed a different schedule at position " << position_;

  // Receding horizon: plan optimally for the visible window and keep the
  // first decision.
  const size_t window_end =
      std::min(position_ + static_cast<size_t>(lookahead_), primed_->size());
  model::Schedule window(primed_->num_processors());
  for (size_t k = position_; k < window_end; ++k) {
    window.Append((*primed_)[k]);
  }
  model::AllocationSchedule plan = opt::ExactOptScheduleWithThreshold(
      cost_model_, window, scheme_, t_);
  const model::AllocatedRequest& first = plan[0];

  scheme_ = model::NextScheme(scheme_, first);
  ++position_;
  return Decision{first.execution_set, first.is_saving_read()};
}

}  // namespace objalloc::core
