// ObjectManager — the single-threaded multi-object router. The paper
// analyzes the allocation of a single object (§3.1); a database holds many,
// each with its own access pattern, allocation scheme, and (possibly) its
// own DOM algorithm. The manager routes an interleaved request stream to
// per-object algorithm instances and aggregates the cost accounting.
//
// Since the service-layer refactor this is a thin wrapper over one
// ObjectShard — the same state machine the sharded, batched ObjectService
// replicates. Use ObjectService for throughput; ObjectManager remains the
// simple serial reference (and the yardstick the service layer's
// determinism tests compare against).

#ifndef OBJALLOC_CORE_OBJECT_MANAGER_H_
#define OBJALLOC_CORE_OBJECT_MANAGER_H_

#include <vector>

#include "objalloc/core/object_shard.h"

namespace objalloc::core {

class ObjectManager {
 public:
  using ObjectStats = core::ObjectStats;

  ObjectManager(int num_processors, const model::CostModel& cost_model)
      : shard_(num_processors, cost_model) {}

  // Registers an object. Fails on duplicate ids, empty or out-of-range
  // schemes, and algorithm/threshold mismatches (DA needs t >= 2).
  util::Status AddObject(ObjectId id, const ObjectConfig& config) {
    return shard_.AddObject(id, config).status();
  }

  // Pre-sizes the directory and state vector for a bulk registration.
  void ReserveObjects(size_t expected_total) {
    shard_.Reserve(expected_total);
  }

  bool HasObject(ObjectId id) const { return shard_.HasObject(id); }
  size_t object_count() const { return shard_.object_count(); }

  // Serves one request against one object, returning the request's cost.
  util::StatusOr<double> Serve(ObjectId id, const Request& request) {
    return shard_.Serve(id, request);
  }

  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const {
    return shard_.StatsFor(id);
  }

  // Aggregates are maintained incrementally by the shard; both are O(1).
  const model::CostBreakdown& TotalBreakdown() const {
    return shard_.TotalBreakdown();
  }
  double TotalCost() const { return shard_.TotalCost(); }
  int64_t TotalRequests() const { return shard_.TotalRequests(); }

 private:
  ObjectShard shard_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_MANAGER_H_
