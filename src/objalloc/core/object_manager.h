// ObjectManager — the multi-object layer a deployment actually uses. The
// paper analyzes the allocation of a single object (§3.1); a database holds
// many, each with its own access pattern, allocation scheme, and (possibly)
// its own DOM algorithm. The manager routes an interleaved request stream
// to per-object algorithm instances and aggregates the cost accounting.

#ifndef OBJALLOC_CORE_OBJECT_MANAGER_H_
#define OBJALLOC_CORE_OBJECT_MANAGER_H_

#include <map>
#include <memory>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/status.h"

namespace objalloc::core {

using ObjectId = int64_t;

struct ObjectConfig {
  ProcessorSet initial_scheme;               // also fixes t
  AlgorithmKind algorithm = AlgorithmKind::kDynamic;
};

class ObjectManager {
 public:
  ObjectManager(int num_processors, const model::CostModel& cost_model);

  // Registers an object. Fails on duplicate ids, empty or out-of-range
  // schemes, and algorithm/threshold mismatches (DA needs t >= 2).
  util::Status AddObject(ObjectId id, const ObjectConfig& config);

  bool HasObject(ObjectId id) const { return objects_.count(id) > 0; }
  size_t object_count() const { return objects_.size(); }

  // Serves one request against one object, returning the request's cost.
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Per-object and aggregate accounting.
  struct ObjectStats {
    int64_t requests = 0;
    model::CostBreakdown breakdown;
    ProcessorSet scheme;  // current allocation scheme
  };
  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;
  model::CostBreakdown TotalBreakdown() const;
  double TotalCost() const { return TotalBreakdown().Cost(cost_model_); }
  int64_t TotalRequests() const;

 private:
  struct ObjectState {
    std::unique_ptr<DomAlgorithm> algorithm;
    int t = 0;
    ProcessorSet scheme;
    ObjectStats stats;
  };

  int num_processors_;
  model::CostModel cost_model_;
  std::map<ObjectId, ObjectState> objects_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_MANAGER_H_
