// DA — the paper's dynamic allocation algorithm (§4.2.2).
//
// DA fixes a core set F of size t-1 and a floating processor p not in F; the
// initial allocation scheme is F ∪ {p}. The processors of F always hold the
// latest version.
//   * read by a data processor      -> {i}, local input,
//   * read by a non-data processor  -> {u} for some u in F, converted into a
//     saving-read (the reader joins the scheme; u records the reader in its
//     join-list so it can later invalidate it),
//   * write by j in F ∪ {p}         -> execution set F ∪ {p},
//   * write by j outside            -> execution set F ∪ {j},
// and every write invalidates all other copies (the execution set becomes the
// new scheme). Each F member sends 'invalidate' control messages to the
// processors in its join-list, except the writer.
//
// This class tracks the join-lists explicitly — they are what makes the
// distributed implementation possible without any global view — and exposes
// them so tests and the message-passing simulator can cross-check the
// invalidation traffic against the analytic |Y \ X \ {writer}| * cc term.

#ifndef OBJALLOC_CORE_DYNAMIC_ALLOCATION_H_
#define OBJALLOC_CORE_DYNAMIC_ALLOCATION_H_

#include <vector>

#include "objalloc/core/dom_algorithm.h"

namespace objalloc::core {

class DynamicAllocation final : public DomAlgorithm {
 public:
  DynamicAllocation() = default;

  std::string name() const override { return "DA"; }
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<DynamicAllocation>(*this);
  }

  ProcessorSet core_set() const { return f_; }          // F
  ProcessorId floating_processor() const { return p_; }  // p
  ProcessorSet scheme() const { return scheme_; }

  // The deterministic (F, p) split of the initial scheme: p is the largest
  // member, F the rest. Shared with ObjectShard's inline dispatch so the
  // devirtualized hot path and this reference class agree by construction.
  static void SplitScheme(ProcessorSet initial_scheme, ProcessorSet* f,
                          ProcessorId* p) {
    *p = initial_scheme.Last();
    *f = initial_scheme.WithErased(*p);
  }

  // Execution set of a write by `writer` — the core DA write rule: the new
  // scheme keeps F plus p when the writer already holds a copy of the
  // latest version's home set, otherwise F plus the writer.
  static ProcessorSet WriteSet(ProcessorSet f, ProcessorId p,
                               ProcessorId writer) {
    return f.Contains(writer) || writer == p ? f.WithInserted(p)
                                             : f.WithInserted(writer);
  }

  // Union of all F members' join-lists (processors that joined the scheme by
  // saving-reads since the last write).
  ProcessorSet JoinedSinceLastWrite() const;

  // The join-list of F member `u` (readers that fetched from u).
  ProcessorSet JoinListOf(ProcessorId u) const;

 private:
  ProcessorSet f_;
  ProcessorId p_ = -1;
  ProcessorSet scheme_;
  // join_lists_[k] is the join-list of the k-th member of F (sorted order).
  std::vector<ProcessorSet> join_lists_;
  int next_f_index_ = 0;  // round-robin choice of the F member serving a read
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_DYNAMIC_ALLOCATION_H_
