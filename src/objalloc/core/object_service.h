// ObjectService — the sharded, batched multi-object serving layer.
//
// Objects are hash-partitioned across N ObjectShards. A batch of events is
// admitted atomically (every event validated — and its (shard, slot) route
// resolved exactly once — before any is served). With more than one worker
// available the admitted batch is partitioned into per-shard sub-batches
// and handed to the ShardExecutor (core/shard_executor.h): long-lived
// worker threads that own fixed shard sets, fed through bounded per-shard
// SPSC rings — no per-batch fork, no global barrier. With one worker (or
// one shard) the executor is never built and the batch is served in place,
// in submission order, through a queue-free serial path.
//
// Pipelining (DESIGN.md §11): SubmitBatch enqueues a batch and returns a
// BatchTicket without waiting, so shard k can serve batch n+1 while shard j
// still works on batch n; WaitBatch (or DrainBatches) finalizes the
// ticket's result. Admission stays all-or-nothing — validation reads only
// registration-time state (routes, processor bounds), which in-flight
// batches never mutate — and the WAL append still happens at submit, ahead
// of any serve, preserving log→serve order. Everything that must observe
// or mutate quiesced shards (stats reads, registrations, checkpoints,
// fault-mode arming, the serial path) fences the pipeline first.
//
// Hot-path engineering (DESIGN.md §8):
//   * Routing is handle-based: admission resolves ObjectId → (shard, dense
//     slot) through the shard directory once and serving indexes the dense
//     slot vector directly — one hash lookup per event on the id path, zero
//     on the ObjectHandle path (Resolve once, serve forever).
//   * All batch scratch (the per-event route array, the executor's
//     per-shard op lists and CostBreakdown deltas) is owned by the service
//     or its executor and recycled across batches: after warming every
//     pipeline context with a maximal batch, both the serial path and the
//     executor path perform zero steady-state allocations (asserted by
//     tests/serving_engine_test.cc through an operator-new counting hook).
//     ServeBatchInto reuses the caller's BatchResult storage the same way.
//
// Determinism contract (same bar as tests/parallel_test.cc): results are
// bit-identical for every shard count and every thread count, including the
// serial ObjectManager path. The argument has three legs:
//   1. Objects never span shards, so each object sees its requests in
//      submission order no matter how the batch is partitioned; a DOM
//      algorithm's decisions depend only on its own object's prefix.
//   2. Workers write disjoint state: each shard (and the per-event cost
//      slots of its events) is owned by exactly one executor worker, and
//      the per-shard queues are FIFO — across pipelined batches a shard
//      applies its sub-batches in submission order.
//   3. Aggregation sums integer message/IO counts (model::CostBreakdown),
//      merged in fixed shard order — associative and commutative exactly;
//      scalar costs are derived from the summed counts, never from
//      reordered floating-point sums — and per-object listings iterate ids
//      in explicitly sorted order.
//
// The service is not itself thread-safe: one caller drives it (batches are
// the unit of internal parallelism), matching the paper's assumption of a
// serializing concurrency-control front end (§3.1).
//
// Fault mode (DESIGN.md §9): EnableFaults arms a deterministic FaultInjector.
// Faults are applied during the *serial* admission pass — each event's global
// admission index advances fault time by one, scripted and random
// crash/recover events fire there, and the live set at each event is recorded
// — so the parallel serve pass stays embarrassingly parallel and the whole
// fault history is bit-identical at any shard x thread count. Admission
// degrades gracefully: a batch containing an event whose object needs more
// live processors than exist is rejected atomically with kUnavailable
// (replayable — fault time still advances, so a retry runs against the
// recovered world); an event whose issuer is crashed is refused individually
// (costs[i] = 0, served[i] = 0), matching the simulator's semantics. Repairs
// happen lazily at serve time (ObjectShard::ServeSlotFaulty) or eagerly via
// RepairDegraded. The zero-fault chaos path is bit-identical to the plain
// engine; the plain path pays one predicted-not-taken branch per batch.
//
// Durability (DESIGN.md §10, §13): EnableDurability attaches a write-ahead
// log and checkpoint directory. Because serving is a pure function of
// admission order, the WAL records *inputs* — one record per admitted
// batch, registration, or fault-control call, appended before the operation
// mutates shard state — and recovery (ObjectService::Recover) loads the
// newest valid snapshot, replays the WAL tail through the very same
// ServeBatchImpl, truncates a torn final record, and reproduces
// bit-identical state (scheme CRCs and cost fingerprints — asserted by
// tests/durability_test.cc).
//
// Logging is asynchronous (core/wal_writer.h): the serve path appends the
// encoded record to an in-memory buffer and keeps computing; a dedicated
// log thread group-commits sealed buffers — one write + one sync covers
// every record since the previous sync, bounded by the group_commit_*
// knobs. With sync_every_batch the service waits for the batch's LSN to be
// durable before any of its effects externalize (memory and disk never
// diverge); by default results are released immediately and a crash may
// lose the un-synced suffix — never consistency, since the on-disk log is
// always a record-aligned prefix of the admitted history.
//
// Checkpoint() rotates generations: flush the WAL, write a snapshot
// atomically — full, or (delta_chain_limit > 0) a *delta* holding only the
// slab pages dirtied since the previous checkpoint, chained onto the last
// full snapshot — open the next WAL, publish the manifest, GC old
// generations. A corrupt snapshot degrades gracefully to the previous
// generation (two WALs replayed instead of one); a corrupt manifest falls
// back to full snapshots only. Replay coalesces consecutive logged batches
// into super-batches pipelined across the shard executor
// (replay_batch_events), bit-identical to serial replay because batch
// boundaries are invisible to the engine outside fault mode. With
// durability off the hot path pays one predicted-not-taken branch per
// batch — the zero-allocation and golden-fingerprint contracts are
// unchanged.
//
// Disk-failure policy (DESIGN.md §14): transient IO errors are retried
// with bounded exponential backoff (WAL groups roll back to the group
// boundary and rewrite; checkpoint/manifest writes rerun); a persistent
// failure degrades durability — DurabilityState::kDegraded — instead of
// stopping the service: serving continues undurably, the directory stays a
// consistent prefix, and ReattachDurability() heals with a fresh
// checkpoint + WAL generation once the disk recovers. Scrub() is the
// offline fsck: per-file CRC-walk verdicts plus a recovery dry run.

#ifndef OBJALLOC_CORE_OBJECT_SERVICE_H_
#define OBJALLOC_CORE_OBJECT_SERVICE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "objalloc/core/checkpoint.h"
#include "objalloc/core/fault_injector.h"
#include "objalloc/core/object_shard.h"
#include "objalloc/core/shard_executor.h"
#include "objalloc/core/wal.h"
#include "objalloc/core/wal_writer.h"
#include "objalloc/util/flat_directory.h"
#include "objalloc/workload/event_source.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {

struct ServiceOptions {
  // Shard count is a pure partitioning knob: any value yields identical
  // results; more shards expose more parallelism to ServeBatch. One shard
  // degenerates to the serial ObjectManager behavior.
  int num_shards = 16;

  util::Status Validate() const;
};

// A pre-resolved route to one object: its home shard and its dense slot
// there. Obtained from ObjectService::Resolve, valid for the lifetime of
// the service that issued it (objects are never removed, so slots are
// stable). Every use is still validated — a handle from another service,
// a tampered handle, or a default-constructed one is rejected, never
// dereferenced blindly: the stored id must match what the slot holds.
struct ObjectHandle {
  uint32_t shard = 0xffffffffu;
  uint32_t slot = ObjectShard::kInvalidSlot;
  ObjectId id = -1;
};

// One batch event addressed by handle instead of id — the zero-hash route.
struct HandleEvent {
  ObjectHandle handle;
  model::Request request;
};

// Outcome of one admitted batch.
struct BatchResult {
  // Per-event scalar costs, in submission order.
  std::vector<double> costs;
  // Traffic of this batch alone (not the service lifetime totals).
  model::CostBreakdown breakdown;
  double cost = 0;
  // Fault mode only (empty / zero on the fault-free path): served[i] == 0
  // marks an event refused because its issuer was crashed — cost 0, no
  // traffic, counted in `unavailable`.
  std::vector<uint8_t> served;
  int64_t unavailable = 0;
};

// Receipt for a batch handed to SubmitBatch. `completed == true` means the
// batch already finished synchronously (serial path, fault mode, or empty
// pipeline budget) and its BatchResult is final; otherwise WaitBatch (or
// DrainBatches) must run before the result — or the event storage backing
// it — is touched. Tickets are cheap values; waiting on a stale ticket
// (its batch already finalized by a drain or a later submit) is an Ok
// no-op.
struct BatchTicket {
  uint32_t context = 0;
  uint64_t sequence = 0;
  bool completed = true;
};

// Outcome of draining an EventSource.
struct StreamResult {
  int64_t events = 0;
  size_t batches = 0;
  model::CostBreakdown breakdown;
  double cost = 0;
  int64_t unavailable = 0;  // fault mode: events refused (issuer crashed)
};

// Durability health of a service (DESIGN.md §14).
//   kDetached  durability was never enabled (or was cleanly disabled).
//   kDurable   every admitted operation is being logged; recovery
//              reproduces the full history.
//   kDegraded  a persistent IO failure stopped logging. The service keeps
//              serving correctly in memory; the durable directory is frozen
//              as a consistent prefix of history. ReattachDurability()
//              heals the state with a fresh checkpoint + WAL generation.
enum class DurabilityState : uint8_t {
  kDetached = 0,
  kDurable = 1,
  kDegraded = 2,
};

// Live load signals (DESIGN.md §15), readable WITHOUT fencing the
// pipeline: relaxed counter snapshots from the shard executor and the
// async WAL writer. This is the backpressure surface a serving front-end
// polls every loop iteration — a fencing read (Stats) would drain the very
// queues it is trying to measure. Single-caller like the rest of the
// service: call it from the serving thread between submits.
struct ServiceLoad {
  // Events enqueued on shard rings but not yet served.
  uint64_t executor_queued_ops = 0;
  // Batches submitted (SubmitBatch) but not yet completed.
  uint32_t inflight_batches = 0;
  // WAL bytes appended but not yet durable (0 when durability is off).
  size_t wal_backlog_bytes = 0;
  DurabilityState durability = DurabilityState::kDetached;
};

// Point-in-time service statistics (ObjectService::Stats): serving totals
// plus the durability health surface — state, the error that degraded it,
// and the retry/degrade counters that tell whether a bad disk was ridden
// through (retries > 0, still kDurable) or given up on (kDegraded).
struct ServiceStats {
  size_t objects = 0;
  int64_t total_requests = 0;
  model::CostBreakdown total_breakdown;

  // Occupancy at the moment Stats() was called, sampled *before* the
  // pipeline fence the rest of the read takes (after the fence they are
  // definitionally zero). bench/service_scaling reports these per row.
  ServiceLoad load;

  DurabilityState durability = DurabilityState::kDetached;
  // The failure that degraded durability; Ok in every other state.
  util::Status durability_error;
  // Transient WAL group write/sync failures absorbed by rollback + backoff
  // + rewrite (durability preserved), across all writers this service has
  // attached (reattach folds the old writer's count in).
  uint64_t wal_write_retries = 0;
  // Transient checkpoint/manifest write failures absorbed by retry.
  uint64_t checkpoint_retries = 0;
  // Batches served *without* logging while degraded — the durability gap a
  // reattach closes (the new checkpoint captures their effects).
  uint64_t degraded_batches = 0;
  // Successful ReattachDurability() calls.
  uint64_t reattach_count = 0;
  // Commit statistics of the currently attached async WAL writer.
  WalCommitStats commit;
};

class ObjectService {
 public:
  static constexpr size_t kDefaultBatchSize = 4096;

  ObjectService(int num_processors, const model::CostModel& cost_model,
                const ServiceOptions& options = {});

  // Status-returning construction boundary: the constructor CHECK-fails on
  // bad arguments, Create reports them instead (processor count out of
  // [1, kMaxProcessors], invalid cost model or options).
  static util::StatusOr<ObjectService> Create(
      int num_processors, const model::CostModel& cost_model,
      const ServiceOptions& options = {});

  // Registers an object with its home shard. Same validation as
  // ObjectManager::AddObject.
  util::Status AddObject(ObjectId id, const ObjectConfig& config);

  // Pre-sizes every table a registration burst touches — the service route
  // directory and each shard's slab pages (with statistical headroom for
  // the hash split) — so registering N reserved objects performs zero
  // allocations (asserted in serving_engine_test) and zero rehashes.
  void ReserveObjects(size_t expected_total);

  // Total heap footprint of the serving state: route directory buckets,
  // shard slab pages, fallback side tables, and batch scratch. Excludes
  // durability buffers (bounded, not per-object).
  size_t MemoryUsageBytes() const;

  bool HasObject(ObjectId id) const;
  size_t object_count() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_processors() const { return num_processors_; }

  // Resolves an object id to its stable (shard, slot) route. NotFound for
  // unregistered ids.
  util::StatusOr<ObjectHandle> Resolve(ObjectId id) const;

  // Single-request path (routes to the owning shard, full validation).
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Single-request handle path: same result as Serve(handle.id, request)
  // without the hash lookup. InvalidArgument for stale/foreign handles.
  util::StatusOr<double> Serve(const ObjectHandle& handle,
                               const Request& request);

  // Batched path. Admission is atomic: if any event names an unknown object
  // or an out-of-range processor, the whole batch is rejected (NotFound /
  // OutOfRange, message names the offending event index) and no state
  // changes. On success every event has been served — in place when only
  // one worker or shard is available, otherwise fanned across shards in
  // parallel — and the result is merged in submission order.
  util::StatusOr<BatchResult> ServeBatch(
      std::span<const workload::MultiObjectEvent> events);

  // Handle-addressed batch: identical semantics and results, but admission
  // validates the pre-resolved routes instead of hashing ids (stale or
  // malformed handles reject the batch atomically with InvalidArgument).
  util::StatusOr<BatchResult> ServeBatch(std::span<const HandleEvent> events);

  // Allocation-recycling variants: clear and refill `*result`, reusing its
  // storage. A caller that keeps one BatchResult across batches pays zero
  // steady-state allocations on the serial path.
  util::Status ServeBatchInto(
      std::span<const workload::MultiObjectEvent> events, BatchResult* result);
  util::Status ServeBatchInto(std::span<const HandleEvent> events,
                              BatchResult* result);

  // Pipelined batch entry: admits and logs the batch, enqueues its
  // per-shard work, and returns without waiting for the serve. The caller
  // must keep `*result` alive and untouched until WaitBatch(ticket) (or
  // DrainBatches) returns; `events` may be reused immediately — admission
  // copies everything the workers need. Order across SubmitBatch calls is
  // submission order per shard (FIFO queues), so results are bit-identical
  // to back-to-back ServeBatch calls. Falls back to synchronous execution
  // (ticket->completed == true) on the serial path and in fault mode —
  // fault time is global serial state. An admission error rejects the
  // batch with no state change, like ServeBatch.
  util::Status SubmitBatch(std::span<const workload::MultiObjectEvent> events,
                           BatchResult* result, BatchTicket* ticket);
  util::Status SubmitBatch(std::span<const HandleEvent> events,
                           BatchResult* result, BatchTicket* ticket);

  // Blocks until the ticket's batch has fully completed and finalizes its
  // BatchResult (per-shard deltas merged in fixed shard order, scalar cost
  // derived). Ok no-op for completed or stale tickets. Any durability
  // follow-up (auto-checkpoint) runs here.
  util::Status WaitBatch(BatchTicket* ticket);

  // Waits for and finalizes every in-flight SubmitBatch — the pipeline
  // fence. All previously returned tickets become stale/completed.
  util::Status DrainBatches();

  // Streaming path: drains `source` through the batch engine in buffers of
  // `batch_size` events — bounded memory for unbounded traces, one buffer
  // and two recycled BatchResults. Batches are pipelined through
  // SubmitBatch double-buffered: batch n+1 is admitted and enqueued while
  // batch n is still being served, overlapping admission with shard work.
  // Stops and returns the error on the first failed batch or source error
  // (events of earlier batches stay served; admission is atomic per batch).
  util::StatusOr<StreamResult> ServeStream(
      workload::EventSource& source, size_t batch_size = kDefaultBatchSize);

  // --- Fault mode -----------------------------------------------------

  // Arms the fault layer: subsequent batches run through the chaos path
  // under `options` (validated against the processor count) and the
  // scripted `schedule` (sorted, in-range — the service-side twin of a
  // sim::FailurePlan). The live set resets to all-live and fault time and
  // stats restart. FailedPrecondition if any registered object uses a
  // non-inlined algorithm kind (no defined failure semantics).
  util::Status EnableFaults(const FaultInjectorOptions& options,
                            FaultSchedule schedule = {});

  // Disarms the fault layer. Liveness resets to all-live; schemes stay as
  // the fault history left them (every object that saw traffic is back at t
  // replicas by the repair invariant). Stats remain readable.
  void DisableFaults();

  bool faults_enabled() const { return injector_ != nullptr; }

  // Manual liveness control (fault mode only; FailedPrecondition
  // otherwise). Crash records the eviction in the crash log — schemes drop
  // the dead member lazily at each object's next event (or eagerly via
  // RepairDegraded); Recover only restores liveness — the recovered copy is
  // stale and rejoins schemes through traffic, never implicitly. Crash of a
  // crashed processor / recover of a live one are Ok no-ops.
  util::Status Crash(ProcessorId p);
  util::Status Recover(ProcessorId p);

  // Eagerly repairs every degraded object that can reach t live replicas
  // (shards in order, lowest slots first). Returns replicas created.
  // Objects whose t exceeds the live count stay degraded.
  int64_t RepairDegraded();

  // Objects currently below their availability threshold (crashed replicas
  // not yet repaired — they heal lazily on their next event).
  size_t degraded_count() const;

  ProcessorSet live_processors() const { return live_; }
  const FaultStats& fault_stats() const { return fault_stats_; }

  // AvailabilityInvariant (|scheme ∩ live| >= t after every served event,
  // checked fatally): always on in debug builds, opt-in for release.
  void set_check_invariant(bool on) { check_invariant_ = on; }
  bool check_invariant() const { return check_invariant_; }

  // --- Durability -----------------------------------------------------

  // Attaches a durability directory and starts generation 1: a snapshot of
  // the current state (an empty service or one mid-life — both work) plus a
  // fresh WAL. Durable files of a previous incarnation in `dir` are removed
  // — this call *starts* a durable history; Recover *continues* one.
  // FailedPrecondition while a non-inlined (kAdaptive) object is registered:
  // its opaque algorithm state cannot be snapshotted.
  //
  // IO failure policy (DESIGN.md §14): transient failures (EIO class) are
  // retried with exponential backoff under DurabilityOptions::retry. A
  // persistent failure (or retry exhaustion) does NOT stop the service:
  // durability degrades to DurabilityState::kDegraded — the service keeps
  // serving correctly in memory, the durable directory freezes as a
  // consistent prefix of history, and SyncDurable/Checkpoint/Stats report
  // the original error until ReattachDurability() heals it.
  util::Status EnableDurability(const std::string& dir,
                                const DurabilityOptions& options = {});

  // Syncs the WAL and detaches (the directory stays recoverable). When the
  // service is degraded, returns the degrading error (the caller learns the
  // tail was lost) and detaches anyway.
  util::Status DisableDurability();

  // True only while durability is attached AND healthy; a degraded service
  // returns false here but durability_state() == kDegraded distinguishes it
  // from a service that never enabled durability.
  bool durability_enabled() const {
    return durability_ != nullptr &&
           durability_->state == DurabilityState::kDurable;
  }
  DurabilityState durability_state() const {
    return durability_ == nullptr ? DurabilityState::kDetached
                                  : durability_->state;
  }
  // The failure that degraded durability; Ok in every other state.
  util::Status durability_error() const {
    return durability_ != nullptr ? durability_->degraded_error
                                  : util::Status::Ok();
  }

  // Heals a degraded service back to kDurable: quarantines the failed WAL
  // generation (renamed *.quarantine — never deleted, never replayed),
  // writes a fresh full checkpoint of the *current* in-memory state as
  // generation g+1, opens a new WAL, and republishes the manifest. The
  // batches served while degraded are captured by the checkpoint, so the
  // healed directory recovers to exactly the live state. With
  // DurabilityOptions::verify_reattach the new directory is re-verified
  // (read-only recovery) before the call reports success.
  // FailedPrecondition unless currently kDegraded. On failure the service
  // stays degraded (with the new error) and can be reattached again once
  // the disk heals.
  util::Status ReattachDurability();

  // Point-in-time serving + durability statistics (fences the pipeline;
  // the `load` field is sampled just before the fence).
  ServiceStats Stats() const;

  // Live queue/backlog occupancy without fencing the pipeline — the
  // backpressure signal (see ServiceLoad). O(1), no locks beyond the WAL
  // writer's stats mutex.
  ServiceLoad Load() const;

  // Rotates the durable generation: syncs the current WAL, writes a full
  // snapshot atomically, opens the next WAL, publishes the manifest, and
  // garbage-collects generations beyond DurabilityOptions::keep_generations.
  // A crash at *any* point in this sequence recovers consistently (the
  // manifest is the atomic commit point). FailedPrecondition when
  // durability is off.
  util::Status Checkpoint();

  // Waits until every appended WAL record is durable (explicit
  // group-commit boundary for sync_every_batch == false).
  util::Status SyncDurable();

  // Commit statistics of the attached async WAL writer — group commits,
  // bytes, commit-latency p50/p99. Zeros while durability is off.
  WalCommitStats DurableCommitStats() const;

  // Reconstructs a service from a durability directory: newest valid
  // snapshot, WAL tail replayed through the serving engine, torn tail
  // truncated. The returned service has durability *armed* on `dir` and
  // continues appending where the log left off. `report`, when non-null,
  // receives the fsck-style account (fallbacks, torn bytes, replay counts).
  static util::StatusOr<ObjectService> Recover(
      const std::string& dir, const DurabilityOptions& options = {},
      RecoveryReport* report = nullptr);

  // Read-only fsck: runs the full recovery pipeline (parse, validate,
  // replay) without truncating the WAL or arming durability, then discards
  // the reconstructed service. The report tells what a real Recover would
  // do; the directory is untouched.
  static util::Status VerifyDurableDir(const std::string& dir,
                                       RecoveryReport* report);

  // Full read-only scrub of a durability directory: classifies every file
  // (manifest, checkpoints, WALs, quarantined generations, strays), walks
  // each one record by record against its CRCs, then runs the recovery
  // pipeline. `report->recoverable` says whether Recover would succeed;
  // `report->clean` additionally demands zero anomalies (no torn tails, no
  // corrupt files, no fallback, no quarantine). Returns the verification
  // status (Ok iff recoverable); per-file verdicts land in the report
  // either way.
  static util::Status Scrub(const std::string& dir, ScrubReport* report);

  // --------------------------------------------------------------------

  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;

  // Lifetime aggregates, summed over shards in shard order — O(shards),
  // exact (integer counts).
  model::CostBreakdown TotalBreakdown() const;
  double TotalCost() const { return TotalBreakdown().Cost(cost_model_); }
  int64_t TotalRequests() const;

  // All registered object ids, ascending — the deterministic iteration
  // order for per-object reports.
  std::vector<ObjectId> SortedObjectIds() const;

 private:
  size_t ShardOf(ObjectId id) const;

  // Durability state (null when detached — the plain hot path pays one
  // predicted branch per batch and never touches it). Survives IO failure:
  // a persistent error flips `state` to kDegraded and the struct stays
  // alive holding the error, the counters, and everything a reattach needs.
  struct Durability {
    std::string dir;
    DurabilityOptions options;
    DurableConfig config;
    uint64_t sequence = 0;       // current generation
    uint64_t base_sequence = 0;  // newest full snapshot generation
    size_t delta_chain_length = 0;  // deltas since that full snapshot
    // The async group-commit writer (unique_ptr: it owns a thread and is
    // not movable). While degraded the writer is detached (log thread
    // joined) but kept for its final Stats until reattach folds them in.
    std::unique_ptr<AsyncWalWriter> wal;
    size_t events_since_checkpoint = 0;
    // Scratch for logging handle-addressed batches and single requests.
    std::vector<workload::MultiObjectEvent> batch_scratch;

    DurabilityState state = DurabilityState::kDurable;
    util::Status degraded_error;  // the failure that degraded; Ok if kDurable
    uint64_t checkpoint_retries = 0;
    uint64_t degraded_batches = 0;
    uint64_t reattach_count = 0;
    // write_retries of writers already detached (folded in at reattach).
    uint64_t wal_retries_detached = 0;
  };

  // Appends one admitted batch to the async WAL (id-addressed; handle
  // events are translated through the scratch buffer). With
  // sync_every_batch the call waits for the record's LSN to be durable. A
  // detected persistent failure (the async writer retried and gave up)
  // *degrades* durability instead of failing the batch: the service enters
  // DurabilityState::kDegraded, stops logging, and keeps serving — the
  // batch proceeds, counted in degraded_batches. In the default mode an
  // I/O error is asynchronous — it surfaces (and degrades) on a later
  // logging call, sync, or checkpoint; the on-disk log is always a
  // consistent prefix.
  template <typename EventT>
  util::Status LogBatch(std::span<const EventT> events);

  // Appends a non-batch operation record; a persistent failure degrades
  // durability (the operation still applies in memory and is captured by
  // the next reattach checkpoint).
  util::Status LogOp(WalRecordType type, std::string_view payload);

  // Transition into kDegraded holding `status` (first failure wins — if
  // already degraded the stored error is returned unchanged): detaches the
  // async writer's log thread and stops all logging until reattach.
  util::Status EnterDegraded(util::Status status);

  // Logs a single-request serve as a batch of one — the two entry points
  // are bit-identical by the engine's contract, so replay through the batch
  // path reproduces the exact state.
  util::Status LogSingle(ObjectId id, const Request& request);

  // Post-batch durability hook: auto-checkpoint when the configured event
  // interval has elapsed. Inline no-op when durability is off.
  util::Status FinishBatch() {
    if (durability_ != nullptr) [[unlikely]] return FinishBatchDurable();
    return util::Status::Ok();
  }
  util::Status FinishBatchDurable();

  // Streams the full service state into the checkpoint file for `sequence`
  // (temp file + atomic publish): shard slot pages flow through bounded
  // chunk records, so peak memory is O(chunk) however many objects live.
  util::Status WriteCheckpointFile(const std::string& path,
                                   uint64_t sequence) const;
  // Streams a delta snapshot: per shard, only the slot ranges whose slab
  // pages were dirtied since the last checkpoint (plus the footer, which
  // always travels whole). Requires armed dirty tracking.
  util::Status WriteDeltaCheckpointFile(const std::string& path,
                                        uint64_t sequence) const;
  ServiceStateImage CaptureServiceState() const;
  util::Status RestoreServiceState(const ServiceStateImage& image);

  // Restores shards + route directory + service state from an opened
  // checkpoint stream (v1 monolithic or v2 chunked); the service must be
  // freshly constructed with the matching config.
  util::Status RestoreFromCheckpointStream(CheckpointReader* reader,
                                           RecoveryReport* report);

  // Applies one delta snapshot stream on top of the current state (the
  // chain walks base+1..g in order), folding new slots into the route
  // directory and replacing the service state with the delta's image.
  util::Status ApplyDeltaCheckpointStream(CheckpointReader* reader,
                                          RecoveryReport* report);

  // Replays one WAL generation buffer into this service. `is_last` permits
  // (and accounts) a torn tail; earlier generations must end cleanly.
  // Consecutive logged batches are coalesced into super-batches of up to
  // `replay_batch_events` events (0 = one submit per logged batch) and
  // pipelined through the shard executor; coalescing stops at non-batch
  // records and whenever the fault injector is armed (batch granularity is
  // observable there).
  util::Status ReplayWalBuffer(std::string_view buffer, uint64_t sequence,
                               const DurableConfig& config, bool is_last,
                               size_t replay_batch_events,
                               RecoveryReport* report, size_t* valid_prefix);

  // Shared engine behind Recover / VerifyDurableDir.
  static util::StatusOr<ObjectService> RecoverInternal(
      const std::string& dir, const DurabilityOptions& options,
      RecoveryReport* report, bool read_only);

  // Shared batch engine: one admission pass resolves and validates every
  // event into routes_ (packed shard/slot words), then the serve pass runs
  // in place or through the shard executor (synchronously — submit, wait).
  // EventT is MultiObjectEvent or HandleEvent.
  template <typename EventT>
  util::Status ServeBatchImpl(std::span<const EventT> events,
                              BatchResult* result);

  // The pipelined twin: same admission and logging, but the executor is
  // handed the batch without waiting. Degrades to ServeBatchImpl on the
  // serial path and in fault mode.
  template <typename EventT>
  util::Status SubmitBatchImpl(std::span<const EventT> events,
                               BatchResult* result, BatchTicket* ticket);

  // Admission pass shared by both engines: validates every event, resolves
  // its route into routes_, sizes `*result`, and — when `context` is
  // non-null — additionally partitions the batch into the context's
  // per-shard op lists. Rejects with no state change.
  template <typename EventT>
  util::Status AdmitBatch(std::span<const EventT> events, BatchResult* result,
                          BatchContext* context);

  // Builds (or rebuilds, after a thread-count change) the shard executor;
  // any in-flight batches of the old executor are merged first. Only called
  // on the parallel path, where min(GlobalThreads(), shards) >= 2.
  void EnsureExecutor();

  // Merges the finished async batch held by pipeline context `index` into
  // its caller's BatchResult (fixed shard order) and releases the slot.
  // The executor's Wait(index) must have returned first. Durability
  // follow-ups are deliberately *not* run here — const read fences use this
  // too; FinishBatch runs on the non-const entry points.
  void MergeAsync(uint32_t index) const;

  // Waits for and merges every in-flight async batch. Const so read-only
  // accessors (StatsFor, TotalBreakdown, ...) can quiesce the shards before
  // touching serve-mutated state; only pipeline bookkeeping (mutable) and
  // caller-owned results change.
  void FenceAsync() const;

  // Fault-mode tail of ServeBatchImpl, entered after the common admission
  // pass validated routes: advances fault time once per event (serial),
  // records per-event live sets, applies degraded admission, then serves
  // through ServeSlotFaulty (in place or fanned by shard).
  template <typename EventT>
  util::Status ServeBatchFaultyTail(std::span<const EventT> events,
                                    BatchResult* result, bool parallel);

  // Applies one crash/recover to the live set (no-op if already in that
  // state). A crash is appended to the crash log at its fault-time index —
  // schemes evict the member lazily on their own serve timeline — and the
  // crash-time scheme members are registered for eager repair.
  void ApplyFault(const FaultEvent& event);

  int num_processors_;
  model::CostModel cost_model_;
  std::vector<ObjectShard> shards_;
  // For power-of-two shard counts the modulo in ShardOf reduces to
  // `x & (num_shards - 1)` — the identical mapping without the per-event
  // integer division. ~0 flags a non-power-of-two count (modulo path).
  uint64_t shard_mask_ = 0;
  // Routes pack (shard, slot) into one 32-bit word: the shard index in the
  // high bit_width(num_shards - 1) bits, the slot below it. 32 bits keep
  // the directory at 12 bytes/bucket (key + route) — the difference between
  // ~89 and ~98 bytes/object at the million-object point. The top two
  // encodings are reserved for the directory's kNotFound/kTombstone
  // sentinels; AddObject rejects registrations that would need them.
  // 64-bit intermediates: a one-shard service has 32 slot bits, and
  // shifting a 32-bit word by 32 is undefined.
  uint32_t route_slot_bits_ = 32;
  uint32_t route_slot_mask_ = 0xFFFFFFFFu;
  uint32_t PackRoute(size_t shard, uint32_t slot) const {
    return static_cast<uint32_t>((uint64_t{shard} << route_slot_bits_) | slot);
  }
  size_t RouteShard(uint32_t route) const {
    return static_cast<size_t>(uint64_t{route} >> route_slot_bits_);
  }
  uint32_t RouteSlot(uint32_t route) const { return route & route_slot_mask_; }
  // Service-level id → packed route directory, the single source of truth
  // for object residency (shards run in external-directory mode and keep no
  // id map of their own). Admission and Resolve route through this one
  // table in one probe — per-event cost independent of the shard count.
  util::FlatDirectory<uint32_t> route_directory_;
  // Batch scratch arena, recycled across batches (see header comment).
  // Per-shard partition scratch lives inside the executor's BatchContexts.
  std::vector<uint32_t> routes_;  // per event: packed shard/slot

  // Fault mode (null when disarmed — the plain path pays one predicted
  // branch per batch). Integer FaultStats merge per shard in fixed order,
  // so totals are deterministic; repair_latency sample *order* depends on
  // the shard/thread configuration, its multiset does not.
  std::unique_ptr<FaultInjector> injector_;
  ProcessorSet live_;
  // Every applied crash at its fault-time index (nondecreasing): the lazy
  // scrub source slots consume positionally. Append-only while armed —
  // growth is one record per crash, which the rates keep tiny relative to
  // event volume; flushed and cleared on EnableFaults / DisableFaults.
  CrashLog crash_log_;
  FaultStats fault_stats_;
#ifndef NDEBUG
  bool check_invariant_ = true;
#else
  bool check_invariant_ = false;
#endif
  // Fault-path batch scratch (this path is not part of the zero-allocation
  // contract; the plain path never touches it).
  std::vector<FaultEvent> fault_buffer_;
  std::vector<ProcessorSet> live_masks_;  // per event: live set

  std::unique_ptr<Durability> durability_;

  // One in-flight SubmitBatch per executor pipeline context: the caller's
  // result to finalize into and the sequence its ticket names (so a stale
  // ticket — slot since recycled — waits as an Ok no-op). Mutable because
  // const read paths fence the pipeline (see FenceAsync).
  struct AsyncBatch {
    BatchResult* result = nullptr;
    uint64_t sequence = 0;
    bool active = false;
  };
  mutable std::vector<AsyncBatch> async_;
  mutable size_t async_active_ = 0;
  int executor_workers_ = 0;

  // Declared last: destroyed first, so the worker threads drain and join
  // while shards_ (whose data() they hold) is still alive. The pointer into
  // shards_ survives moves of the service — vector moves transfer the heap
  // buffer, never relocate it.
  std::unique_ptr<ShardExecutor> executor_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_SERVICE_H_
