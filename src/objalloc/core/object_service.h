// ObjectService — the sharded, batched multi-object serving layer.
//
// Objects are hash-partitioned across N ObjectShards. A batch of events is
// admitted atomically (every event validated before any is served), split by
// shard, fanned across the util::ParallelFor pool — one chunk of shards per
// worker — and the per-event costs and per-shard traffic accounting are
// merged back in submission order.
//
// Determinism contract (same bar as tests/parallel_test.cc): results are
// bit-identical for every shard count and every thread count, including the
// serial ObjectManager path. The argument has three legs:
//   1. Objects never span shards, so each object sees its requests in
//      submission order no matter how the batch is partitioned; a DOM
//      algorithm's decisions depend only on its own object's prefix.
//   2. Workers write disjoint state: a shard (and the per-event cost slots
//      of its events) is touched by exactly one ParallelFor chunk.
//   3. Aggregation sums integer message/IO counts (model::CostBreakdown),
//      associative and commutative exactly — scalar costs are derived from
//      the summed counts, never from reordered floating-point sums — and
//      per-object listings iterate ids in explicitly sorted order.
//
// The service is not itself thread-safe: one caller drives it (batches are
// the unit of internal parallelism), matching the paper's assumption of a
// serializing concurrency-control front end (§3.1).

#ifndef OBJALLOC_CORE_OBJECT_SERVICE_H_
#define OBJALLOC_CORE_OBJECT_SERVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "objalloc/core/object_shard.h"
#include "objalloc/workload/event_source.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {

struct ServiceOptions {
  // Shard count is a pure partitioning knob: any value yields identical
  // results; more shards expose more parallelism to ServeBatch. One shard
  // degenerates to the serial ObjectManager behavior.
  int num_shards = 16;

  util::Status Validate() const;
};

// Outcome of one admitted batch.
struct BatchResult {
  // Per-event scalar costs, in submission order.
  std::vector<double> costs;
  // Traffic of this batch alone (not the service lifetime totals).
  model::CostBreakdown breakdown;
  double cost = 0;
};

// Outcome of draining an EventSource.
struct StreamResult {
  int64_t events = 0;
  size_t batches = 0;
  model::CostBreakdown breakdown;
  double cost = 0;
};

class ObjectService {
 public:
  static constexpr size_t kDefaultBatchSize = 4096;

  ObjectService(int num_processors, const model::CostModel& cost_model,
                const ServiceOptions& options = {});

  // Registers an object with its home shard. Same validation as
  // ObjectManager::AddObject.
  util::Status AddObject(ObjectId id, const ObjectConfig& config);

  // Pre-sizes every shard's object table for a bulk registration.
  void ReserveObjects(size_t expected_total);

  bool HasObject(ObjectId id) const;
  size_t object_count() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_processors() const { return num_processors_; }

  // Single-request path (routes to the owning shard, full validation).
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Batched path. Admission is atomic: if any event names an unknown object
  // or an out-of-range processor, the whole batch is rejected (NotFound /
  // OutOfRange, message names the offending event index) and no state
  // changes. On success every event has been served, shards running in
  // parallel, and the result is merged in submission order.
  util::StatusOr<BatchResult> ServeBatch(
      std::span<const workload::MultiObjectEvent> events);

  // Streaming path: drains `source` through ServeBatch in buffers of
  // `batch_size` events — bounded memory for unbounded traces. Stops and
  // returns the error on the first failed batch or source error (events of
  // earlier batches stay served; admission is atomic per batch).
  util::StatusOr<StreamResult> ServeStream(
      workload::EventSource& source, size_t batch_size = kDefaultBatchSize);

  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;

  // Lifetime aggregates, summed over shards in shard order — O(shards),
  // exact (integer counts).
  model::CostBreakdown TotalBreakdown() const;
  double TotalCost() const { return TotalBreakdown().Cost(cost_model_); }
  int64_t TotalRequests() const;

  // All registered object ids, ascending — the deterministic iteration
  // order for per-object reports.
  std::vector<ObjectId> SortedObjectIds() const;

 private:
  size_t ShardOf(ObjectId id) const;

  int num_processors_;
  model::CostModel cost_model_;
  std::vector<ObjectShard> shards_;
  // Per-shard event-index lists, reused across batches to keep the
  // admission pass allocation-free in steady state.
  std::vector<std::vector<uint32_t>> shard_events_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_SERVICE_H_
