// ObjectService — the sharded, batched multi-object serving layer.
//
// Objects are hash-partitioned across N ObjectShards. A batch of events is
// admitted atomically (every event validated — and its (shard, slot) route
// resolved exactly once — before any is served). With more than one worker
// available the admitted batch is split by shard and fanned across the
// util::ParallelFor pool, one chunk of shards per worker; with one worker
// (or one shard) the fan-out and per-shard merge machinery is skipped
// entirely and the batch is served in place, in submission order.
//
// Hot-path engineering (DESIGN.md §8):
//   * Routing is handle-based: admission resolves ObjectId → (shard, dense
//     slot) through the shard directory once and serving indexes the dense
//     slot vector directly — one hash lookup per event on the id path, zero
//     on the ObjectHandle path (Resolve once, serve forever).
//   * All batch scratch (the per-event route array, per-shard event-index
//     lists, per-shard CostBreakdown deltas) is owned by the service and
//     recycled across batches: after a warm-up batch of maximal size the
//     serial batch path performs zero allocations (asserted by
//     tests/serving_engine_test.cc through an operator-new counting hook);
//     the parallel fan-out adds only the O(1) ParallelFor closure.
//     ServeBatchInto reuses the caller's BatchResult storage the same way.
//
// Determinism contract (same bar as tests/parallel_test.cc): results are
// bit-identical for every shard count and every thread count, including the
// serial ObjectManager path. The argument has three legs:
//   1. Objects never span shards, so each object sees its requests in
//      submission order no matter how the batch is partitioned; a DOM
//      algorithm's decisions depend only on its own object's prefix.
//   2. Workers write disjoint state: a shard (and the per-event cost slots
//      of its events) is touched by exactly one ParallelFor chunk.
//   3. Aggregation sums integer message/IO counts (model::CostBreakdown),
//      associative and commutative exactly — scalar costs are derived from
//      the summed counts, never from reordered floating-point sums — and
//      per-object listings iterate ids in explicitly sorted order.
//
// The service is not itself thread-safe: one caller drives it (batches are
// the unit of internal parallelism), matching the paper's assumption of a
// serializing concurrency-control front end (§3.1).

#ifndef OBJALLOC_CORE_OBJECT_SERVICE_H_
#define OBJALLOC_CORE_OBJECT_SERVICE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "objalloc/core/object_shard.h"
#include "objalloc/util/flat_directory.h"
#include "objalloc/workload/event_source.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {

struct ServiceOptions {
  // Shard count is a pure partitioning knob: any value yields identical
  // results; more shards expose more parallelism to ServeBatch. One shard
  // degenerates to the serial ObjectManager behavior.
  int num_shards = 16;

  util::Status Validate() const;
};

// A pre-resolved route to one object: its home shard and its dense slot
// there. Obtained from ObjectService::Resolve, valid for the lifetime of
// the service that issued it (objects are never removed, so slots are
// stable). Every use is still validated — a handle from another service,
// a tampered handle, or a default-constructed one is rejected, never
// dereferenced blindly: the stored id must match what the slot holds.
struct ObjectHandle {
  uint32_t shard = 0xffffffffu;
  uint32_t slot = ObjectShard::kInvalidSlot;
  ObjectId id = -1;
};

// One batch event addressed by handle instead of id — the zero-hash route.
struct HandleEvent {
  ObjectHandle handle;
  model::Request request;
};

// Outcome of one admitted batch.
struct BatchResult {
  // Per-event scalar costs, in submission order.
  std::vector<double> costs;
  // Traffic of this batch alone (not the service lifetime totals).
  model::CostBreakdown breakdown;
  double cost = 0;
};

// Outcome of draining an EventSource.
struct StreamResult {
  int64_t events = 0;
  size_t batches = 0;
  model::CostBreakdown breakdown;
  double cost = 0;
};

class ObjectService {
 public:
  static constexpr size_t kDefaultBatchSize = 4096;

  ObjectService(int num_processors, const model::CostModel& cost_model,
                const ServiceOptions& options = {});

  // Registers an object with its home shard. Same validation as
  // ObjectManager::AddObject.
  util::Status AddObject(ObjectId id, const ObjectConfig& config);

  // Pre-sizes every shard's directory and state vector for a bulk
  // registration: registering N reserved objects does O(1) amortized
  // rehashes (see the registration case in bench/perf_micro.cc).
  void ReserveObjects(size_t expected_total);

  bool HasObject(ObjectId id) const;
  size_t object_count() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }
  int num_processors() const { return num_processors_; }

  // Resolves an object id to its stable (shard, slot) route. NotFound for
  // unregistered ids.
  util::StatusOr<ObjectHandle> Resolve(ObjectId id) const;

  // Single-request path (routes to the owning shard, full validation).
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Single-request handle path: same result as Serve(handle.id, request)
  // without the hash lookup. InvalidArgument for stale/foreign handles.
  util::StatusOr<double> Serve(const ObjectHandle& handle,
                               const Request& request);

  // Batched path. Admission is atomic: if any event names an unknown object
  // or an out-of-range processor, the whole batch is rejected (NotFound /
  // OutOfRange, message names the offending event index) and no state
  // changes. On success every event has been served — in place when only
  // one worker or shard is available, otherwise fanned across shards in
  // parallel — and the result is merged in submission order.
  util::StatusOr<BatchResult> ServeBatch(
      std::span<const workload::MultiObjectEvent> events);

  // Handle-addressed batch: identical semantics and results, but admission
  // validates the pre-resolved routes instead of hashing ids (stale or
  // malformed handles reject the batch atomically with InvalidArgument).
  util::StatusOr<BatchResult> ServeBatch(std::span<const HandleEvent> events);

  // Allocation-recycling variants: clear and refill `*result`, reusing its
  // storage. A caller that keeps one BatchResult across batches pays zero
  // steady-state allocations on the serial path.
  util::Status ServeBatchInto(
      std::span<const workload::MultiObjectEvent> events, BatchResult* result);
  util::Status ServeBatchInto(std::span<const HandleEvent> events,
                              BatchResult* result);

  // Streaming path: drains `source` through the batch engine in buffers of
  // `batch_size` events — bounded memory for unbounded traces, one buffer
  // and one BatchResult recycled throughout. Stops and returns the error on
  // the first failed batch or source error (events of earlier batches stay
  // served; admission is atomic per batch).
  util::StatusOr<StreamResult> ServeStream(
      workload::EventSource& source, size_t batch_size = kDefaultBatchSize);

  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;

  // Lifetime aggregates, summed over shards in shard order — O(shards),
  // exact (integer counts).
  model::CostBreakdown TotalBreakdown() const;
  double TotalCost() const { return TotalBreakdown().Cost(cost_model_); }
  int64_t TotalRequests() const;

  // All registered object ids, ascending — the deterministic iteration
  // order for per-object reports.
  std::vector<ObjectId> SortedObjectIds() const;

 private:
  size_t ShardOf(ObjectId id) const;

  // Shared batch engine: one admission pass resolves and validates every
  // event into routes_ (packed shard<<32 | slot), then the serve pass runs
  // in place or fanned by shard. EventT is MultiObjectEvent or HandleEvent.
  template <typename EventT>
  util::Status ServeBatchImpl(std::span<const EventT> events,
                              BatchResult* result);

  int num_processors_;
  model::CostModel cost_model_;
  std::vector<ObjectShard> shards_;
  // For power-of-two shard counts the modulo in ShardOf reduces to
  // `x & (num_shards - 1)` — the identical mapping without the per-event
  // integer division. ~0 flags a non-power-of-two count (modulo path).
  uint64_t shard_mask_ = 0;
  // Service-level id → packed (shard << 32 | slot) route directory,
  // mirrored from the shards at AddObject. Admission and Resolve route
  // through this single table in one probe — per-event cost independent of
  // the shard count, no per-shard directory hop, no ShardOf rehash.
  util::FlatDirectory<uint64_t> route_directory_;
  // Batch scratch arena, recycled across batches (see header comment).
  std::vector<uint64_t> routes_;                    // per event: shard|slot
  std::vector<std::vector<uint32_t>> shard_events_;  // per shard: event idxs
  std::vector<model::CostBreakdown> shard_deltas_;   // per shard: traffic
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_SERVICE_H_
