// SA — the traditional read-one-write-all static allocation algorithm
// (§4.2.1). The allocation scheme is pinned to the initial scheme Q:
//   * read by i in Q     -> execution set {i} (local input),
//   * read by i not in Q -> execution set {some member of Q},
//   * write              -> execution set Q (propagate to all of Q).
// SA never uses saving-reads, so the scheme stays Q forever.

#ifndef OBJALLOC_CORE_STATIC_ALLOCATION_H_
#define OBJALLOC_CORE_STATIC_ALLOCATION_H_

#include "objalloc/core/dom_algorithm.h"

namespace objalloc::core {

class StaticAllocation final : public DomAlgorithm {
 public:
  StaticAllocation() = default;

  std::string name() const override { return "SA"; }
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<StaticAllocation>(*this);
  }

  ProcessorSet scheme() const { return scheme_; }

 private:
  ProcessorSet scheme_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_STATIC_ALLOCATION_H_
