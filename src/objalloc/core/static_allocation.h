// SA — the traditional read-one-write-all static allocation algorithm
// (§4.2.1). The allocation scheme is pinned to the initial scheme Q:
//   * read by i in Q     -> execution set {i} (local input),
//   * read by i not in Q -> execution set {some member of Q},
//   * write              -> execution set Q (propagate to all of Q).
// SA never uses saving-reads, so the scheme stays Q forever.

#ifndef OBJALLOC_CORE_STATIC_ALLOCATION_H_
#define OBJALLOC_CORE_STATIC_ALLOCATION_H_

#include "objalloc/core/dom_algorithm.h"

namespace objalloc::core {

class StaticAllocation final : public DomAlgorithm {
 public:
  StaticAllocation() = default;

  std::string name() const override { return "SA"; }
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<StaticAllocation>(*this);
  }

  // The SA decision rule as a pure function of (scheme, request). Step()
  // and ObjectShard's inline dispatch both evaluate exactly this function,
  // so the devirtualized hot path cannot drift from the reference class
  // (tests/serving_engine_test.cc enforces the equality).
  static Decision Decide(ProcessorSet scheme, const Request& request) {
    if (request.is_write()) {
      return Decision{scheme, false};
    }
    if (scheme.Contains(request.processor)) {
      return Decision{ProcessorSet::Singleton(request.processor), false};
    }
    // SAOS picks an arbitrary member of Q; we pick the smallest id so runs
    // are deterministic.
    return Decision{ProcessorSet::Singleton(scheme.First()), false};
  }

  ProcessorSet scheme() const { return scheme_; }

 private:
  ProcessorSet scheme_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_STATIC_ALLOCATION_H_
