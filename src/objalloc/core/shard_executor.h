// ShardExecutor — long-lived worker threads that *own* shards, replacing the
// fork-join-per-batch fan-out (DESIGN.md §11).
//
// The ParallelFor engine of PRs 1–3 made every ServeBatch a fork-join: wake
// the pool, claim shard chunks, hit a global barrier, merge. At serving
// batch sizes the barrier and wake-up dominate, which is why
// BENCH_service_scaling.json recorded speedup ≤ 1.0 at every shard × thread
// point. This executor inverts the model, following the job-queue design of
// oidadb's worker/jobs split:
//
//   * Each worker thread owns a fixed contiguous range of shards for its
//     whole life. Shard state is touched by exactly one thread, ever — the
//     disjoint-writes leg of the determinism contract becomes structural,
//     and a shard's slots stay warm in one core's cache across batches.
//   * The serving thread partitions a batch once at admission into
//     per-shard sub-batches (ShardOp lists inside a BatchContext) and
//     enqueues one ShardTask per non-empty shard onto that shard's bounded
//     SPSC ring (util/spsc_queue.h). Workers drain their rings in FIFO
//     order; there is no global barrier anywhere.
//   * Results carry sequence numbers (BatchContext::sequence) and per-shard
//     integer deltas that the submitter merges in fixed shard order after
//     the batch's completion count hits zero — bit-identical to the serial
//     engine at any shard × worker count, the same argument as §7.
//
// Cross-batch pipelining falls out of the queues: the executor keeps a small
// ring of `depth` BatchContexts, so while shard j is still serving batch n,
// shard k can already be serving batch n+1 — per-shard FIFO guarantees a
// shard applies batches in submission order, and per-object event order (the
// only order the DOM algorithms observe) is exactly the submission order.
// The ObjectService drives this either synchronously (Submit then Wait — the
// plain ServeBatch contract) or pipelined (SubmitBatch/WaitBatch tickets,
// ServeStream's double buffer), and fences the pipeline (DrainAll) before
// anything that must observe or mutate quiesced shards: registrations,
// stats reads, checkpoints, fault-mode arming.
//
// Parking protocol: a worker that finds all its rings empty takes its own
// mutex and sleeps on its condition variable keyed to a wake epoch; the
// producer bumps the epoch under the same mutex after enqueuing, so wake-ups
// cannot be lost. A short pre-park poll keeps back-to-back pipelined batches
// on the fast path. Steady-state Submit/Wait performs zero heap allocations
// (asserted by tests/serving_engine_test.cc through the operator-new hook).

#ifndef OBJALLOC_CORE_SHARD_EXECUTOR_H_
#define OBJALLOC_CORE_SHARD_EXECUTOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "objalloc/core/fault_injector.h"
#include "objalloc/core/object_shard.h"
#include "objalloc/model/request.h"
#include "objalloc/util/spsc_queue.h"

namespace objalloc::core {

// One admitted event, pre-routed for its home shard's worker: the dense
// slot to serve and the submission index whose cost cell to fill.
struct ShardOp {
  uint32_t index = 0;  // event index within the batch
  uint32_t slot = 0;   // dense slot in the owning shard
  model::Request request;
};

// One queue entry: "serve batch context `context`'s sub-batch for shard
// `shard`". The payload lives in the BatchContext; the task is 8 bytes.
struct ShardTask {
  uint32_t context = 0;
  uint32_t shard = 0;
};

// Per-batch serving state shared between the submitting thread and the
// workers. The executor owns a fixed ring of these (the pipeline depth);
// all vectors are recycled across batches, so steady-state submission
// never allocates. Workers write disjoint cells: shard s's worker touches
// only ops[s], deltas[s], fault_stats[s], and the costs[] cells of its own
// events.
struct BatchContext {
  uint64_t sequence = 0;                     // submission order stamp
  std::vector<std::vector<ShardOp>> ops;     // per shard: this batch's work
  std::vector<model::CostBreakdown> deltas;  // per shard: traffic delta
  std::vector<FaultStats> fault_stats;       // per shard (fault mode only)
  double* costs = nullptr;                   // per event, submission order
  // Fault mode (null / unused on the plain path): the per-event live sets
  // recorded by the serial fault pass plus the shared fault machinery, all
  // stable for the batch's lifetime — fault batches run synchronously
  // (submit, wait) so the service scratch they point into cannot be
  // recycled under them. Refused events are simply never emitted as ops.
  const ProcessorSet* live_masks = nullptr;
  const CrashLog* crash_log = nullptr;
  const FaultInjector* injector = nullptr;
  size_t base_index = 0;
  bool faulty = false;
  bool check_invariant = false;
  // Completion: sub-batches still outstanding; in_flight flips false (under
  // the executor's done mutex) when the last one lands.
  std::atomic<uint32_t> pending{0};
  std::atomic<bool> in_flight{false};
};

class ShardExecutor {
 public:
  // Pipeline depth: batches that may be in flight at once. Depth 1 is
  // strictly synchronous; the default keeps a submitted batch, a serving
  // batch, and an admitting batch overlapped with headroom.
  static constexpr size_t kDefaultDepth = 4;

  // `shards` must outlive the executor (the ObjectService's dense shard
  // array; its address is stable because the vector never regrows after
  // construction). Spawns min(num_workers, num_shards) worker threads, each
  // owning a contiguous shard range.
  ShardExecutor(ObjectShard* shards, size_t num_shards, int num_workers,
                size_t depth = kDefaultDepth);

  // Drains every in-flight batch, then stops and joins the workers.
  ~ShardExecutor();

  ShardExecutor(const ShardExecutor&) = delete;
  ShardExecutor& operator=(const ShardExecutor&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }
  size_t depth() const { return contexts_.size(); }

  // Index of the context the next Acquire() will hand out, without blocking
  // or advancing. The service peeks first so it can merge that context's
  // previous (still-unfinalized) batch before Acquire resets the scratch.
  uint32_t PeekNextContext() const { return next_context_; }

  // Hands out the next pipeline slot round-robin, blocking until its
  // previous batch (if any) has fully completed, and resets its scratch
  // (ops cleared, deltas zeroed, fault fields nulled) with a fresh sequence
  // number. Single submitter thread only.
  uint32_t Acquire();

  BatchContext& context(uint32_t index) { return *contexts_[index]; }

  // Enqueues one ShardTask per non-empty ops[s] list of `context` and wakes
  // the owning workers. The caller must have filled ops/costs (and the
  // fault fields when faulty) first. A context with no work completes
  // immediately without touching the queues.
  void Submit(uint32_t context);

  // Blocks until `context`'s batch has fully completed. All shard writes of
  // that batch happen-before the return (acquire on the completion flag).
  void Wait(uint32_t context);

  // True while any submitted batch has not completed.
  bool HasInflight() const;

  // Occupancy introspection (DESIGN.md §15): events enqueued but not yet
  // served, and batches submitted but not yet completed. Relaxed snapshots
  // — readable from any thread without fencing the pipeline, which is what
  // makes them usable as a live backpressure signal (a fencing read would
  // drain the very queues it measures).
  uint64_t QueuedOps() const {
    return queued_ops_.load(std::memory_order_relaxed);
  }
  uint32_t InflightBatches() const {
    return inflight_batches_.load(std::memory_order_relaxed);
  }

  // Waits for every in-flight batch — the pipeline fence. After DrainAll
  // the shards are quiescent: no worker will touch them until the next
  // Submit.
  void DrainAll();

 private:
  struct Worker {
    std::thread thread;
    size_t begin = 0;  // owned shard range [begin, end)
    size_t end = 0;
    // Parking: bumped under `mutex` by the producer after enqueuing.
    std::mutex mutex;
    std::condition_variable wake;
    uint64_t epoch = 0;
  };

  void WorkerLoop(Worker* worker);
  void RunTask(uint32_t context_index, uint32_t shard_index);

  ObjectShard* shards_;
  size_t num_shards_;
  std::vector<std::unique_ptr<util::SpscQueue<ShardTask>>> queues_;
  std::vector<std::unique_ptr<BatchContext>> contexts_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<uint32_t> shard_owner_;  // shard -> worker index
  std::vector<uint8_t> wake_scratch_;  // per worker: needs a wake this submit
  uint32_t next_context_ = 0;
  uint64_t next_sequence_ = 0;
  std::atomic<bool> stop_{false};
  // Occupancy counters (see QueuedOps/InflightBatches). Producer adds at
  // Submit, workers subtract as they serve; both relaxed — readers want a
  // load signal, not a synchronization edge.
  std::atomic<uint64_t> queued_ops_{0};
  std::atomic<uint32_t> inflight_batches_{0};
  // Completion handshake (shared by all contexts; completions are rare —
  // one per sub-batch at most, one contended notify per batch).
  std::mutex done_mutex_;
  std::condition_variable done_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_SHARD_EXECUTOR_H_
