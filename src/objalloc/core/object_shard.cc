#include "objalloc/core/object_shard.h"

#include <algorithm>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/util/logging.h"

namespace objalloc::core {

ObjectShard::ObjectShard(int num_processors,
                         const model::CostModel& cost_model)
    : num_processors_(num_processors), cost_model_(cost_model) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
}

util::Status ObjectShard::AddObject(ObjectId id, const ObjectConfig& config) {
  if (directory_.Contains(id)) {
    return util::Status::InvalidArgument("duplicate object id " +
                                         std::to_string(id));
  }
  if (config.initial_scheme.Empty() ||
      !config.initial_scheme.IsSubsetOf(
          ProcessorSet::FirstN(num_processors_))) {
    return util::Status::InvalidArgument("bad initial scheme for object " +
                                         std::to_string(id));
  }
  if (config.algorithm == AlgorithmKind::kDynamic &&
      config.initial_scheme.Size() < 2) {
    return util::Status::InvalidArgument(
        "dynamic allocation needs at least two initial copies");
  }
  SlotState state;
  state.id = id;
  state.kind = config.algorithm;
  state.t = config.initial_scheme.Size();
  state.scheme = config.initial_scheme;
  const double cc = cost_model_.control;
  const double cd = cost_model_.data;
  const double cio = cost_model_.io;
  state.cost_read_local = cio;  // {0,0,1}: (0 + 0) + 1*cio
  switch (config.algorithm) {
    case AlgorithmKind::kStatic: {
      // Q is pinned; every per-pattern cost is a constant of |Q|.
      const double q = static_cast<double>(state.t);
      state.cost_read_remote = (cc + cd) + cio;           // {1,1,1}
      state.cost_write_a = (q - 1) * cd + q * cio;        // {0,|Q|-1,|Q|}
      state.cost_write_b = q * cd + q * cio;              // {0,|Q|,|Q|}
      break;
    }
    case AlgorithmKind::kDynamic: {
      // The scheme after every write has size t, so the data and io terms
      // of a write are constants; only the control term (invalidations of
      // saving-readers) varies per event.
      const double t = static_cast<double>(state.t);
      state.cost_read_remote = (cc + cd) + 2 * cio;       // {1,1,2} saving
      state.cost_write_a = (t - 1) * cd;                  // data term
      state.cost_write_b = t * cio;                       // io term
      DynamicAllocation::SplitScheme(config.initial_scheme, &state.f,
                                     &state.p);
      break;
    }
    default: {
      state.fallback = CreateAlgorithm(config.algorithm, cost_model_);
      state.fallback->Reset(num_processors_, config.initial_scheme);
      break;
    }
  }
  directory_.Insert(id, static_cast<uint32_t>(slots_.size()));
  slots_.push_back(std::move(state));
  return util::Status::Ok();
}

double ObjectShard::ServeSlot(uint32_t slot, const Request& request,
                              model::CostBreakdown* delta) {
  SlotState& state = slots_[slot];
  const ProcessorId i = request.processor;
  model::CostBreakdown breakdown;
  double cost;
  switch (state.kind) {
    case AlgorithmKind::kStatic: {
      // StaticAllocation::Decide specialized per branch: the scheme never
      // changes, so the breakdown is a pure function of membership.
      if (request.is_read()) {
        if (state.scheme.Contains(i)) {
          breakdown.io_ops = 1;
          cost = state.cost_read_local;
        } else {
          breakdown.control_messages = 1;
          breakdown.data_messages = 1;
          breakdown.io_ops = 1;
          cost = state.cost_read_remote;
        }
      } else {
        // X == Q: no invalidations, |Q \ {i}| transfers, |Q| outputs.
        const bool member = state.scheme.Contains(i);
        breakdown.data_messages = state.t - (member ? 1 : 0);
        breakdown.io_ops = state.t;
        cost = member ? state.cost_write_a : state.cost_write_b;
      }
      break;
    }
    case AlgorithmKind::kDynamic: {
      if (request.is_read()) {
        if (state.scheme.Contains(i)) {
          breakdown.io_ops = 1;
          cost = state.cost_read_local;
        } else {
          // Saving-read via the round-robin F member: one request, one
          // transfer, one input at the server plus the saving output at i.
          // Which F member serves is invisible to cost and scheme, but the
          // round-robin index is kept in lockstep with the reference class.
          const uint32_t f_size = static_cast<uint32_t>(state.t - 1);
          state.next_f = (state.next_f + 1) % f_size;
          state.scheme.Insert(i);
          breakdown.control_messages = 1;
          breakdown.data_messages = 1;
          breakdown.io_ops = 2;
          cost = state.cost_read_remote;
        }
      } else {
        const ProcessorSet x = DynamicAllocation::WriteSet(state.f, state.p, i);
        // Invalidations reach the stale copies other than the writer's own.
        const int64_t control = state.scheme.Minus(x).WithErased(i).Size();
        breakdown.control_messages = control;
        breakdown.data_messages = state.t - 1;
        breakdown.io_ops = state.t;
        cost = (static_cast<double>(control) * cost_model_.control +
                state.cost_write_a) +
               state.cost_write_b;
        state.scheme = x;
      }
      break;
    }
    default: {
      // Virtual fallback for the non-inlined kinds.
      Decision decision = state.fallback->Step(request);
      model::AllocatedRequest entry{request, decision.execution_set,
                                    request.is_read() && decision.saving};
      breakdown = model::RequestBreakdown(entry, state.scheme);
      state.scheme = model::NextScheme(state.scheme, entry);
      OBJALLOC_CHECK_GE(state.scheme.Size(), state.t)
          << "algorithm violated the availability threshold of object "
          << state.id;
      cost = breakdown.Cost(cost_model_);
      break;
    }
  }
  state.requests += 1;
  state.breakdown += breakdown;
  total_requests_ += 1;
  total_breakdown_ += breakdown;
  if (delta != nullptr) *delta += breakdown;
  return cost;
}

util::StatusOr<double> ObjectShard::Serve(ObjectId id,
                                          const Request& request) {
  const uint32_t slot = SlotOf(id);
  if (slot == kInvalidSlot) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  if (request.processor < 0 || request.processor >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  return ServeSlot(slot, request, nullptr);
}

util::StatusOr<ObjectStats> ObjectShard::StatsFor(ObjectId id) const {
  const uint32_t slot = SlotOf(id);
  if (slot == kInvalidSlot) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  const SlotState& state = slots_[slot];
  ObjectStats stats;
  stats.requests = state.requests;
  stats.breakdown = state.breakdown;
  stats.scheme = state.scheme;
  return stats;
}

std::vector<ObjectId> ObjectShard::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(slots_.size());
  for (const SlotState& state : slots_) ids.push_back(state.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace objalloc::core
