#include "objalloc/core/object_shard.h"

#include <algorithm>
#include <limits>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/model/legality.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/record_io.h"

namespace objalloc::core {

namespace {
// Wire size of one snapshot slot record (unchanged since format v1):
// id(8) kind(1) t(4) scheme(8) f(8) p(4) next_f(4) crash_log_pos(8)
// requests(8) breakdown(3×8).
constexpr size_t kSnapshotSlotBytes = 8 + 1 + 4 + 8 + 8 + 4 + 4 + 8 + 8 + 3 * 8;
}  // namespace

ObjectShard::ObjectShard(int num_processors,
                         const model::CostModel& cost_model,
                         bool external_directory)
    : num_processors_(num_processors),
      cost_model_(cost_model),
      owns_directory_(!external_directory) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
  // Fold the per-(kind, t) cost scalars once. Every expression keeps the
  // association order of the former per-slot precomputation — (ctrl*cc +
  // cd-term) + cio-term, matching CostBreakdown::Cost — so moving the
  // constants from the slot to this table cannot change a single bit.
  cost_table_.resize(3 * (util::kMaxProcessors + 1));
  const double cc = cost_model_.control;
  const double cd = cost_model_.data;
  const double cio = cost_model_.io;
  for (int t = 0; t <= num_processors; ++t) {
    const double q = static_cast<double>(t);
    CostEntry& sa =
        cost_table_[static_cast<size_t>(AlgorithmKind::kStatic) *
                        (util::kMaxProcessors + 1) +
                    t];
    // Q is pinned; every per-pattern cost is a constant of |Q|.
    sa.read_local = cio;                       // {0,0,1}: (0 + 0) + 1*cio
    sa.read_remote = (cc + cd) + cio;          // {1,1,1}
    sa.write_a = (q - 1) * cd + q * cio;       // {0,|Q|-1,|Q|}
    sa.write_b = q * cd + q * cio;             // {0,|Q|,|Q|}
    CostEntry& da =
        cost_table_[static_cast<size_t>(AlgorithmKind::kDynamic) *
                        (util::kMaxProcessors + 1) +
                    t];
    // The scheme after every write has size t, so the data and io terms of
    // a write are constants; only the control term (invalidations of
    // saving-readers) varies per event.
    da.read_local = cio;
    da.read_remote = (cc + cd) + 2 * cio;      // {1,1,2} saving
    da.write_a = (q - 1) * cd;                 // data term
    da.write_b = q * cio;                      // io term
  }
}

util::Status ObjectShard::ValidateConfig(const ObjectConfig& config,
                                         int num_processors) {
  if (config.initial_scheme.Empty() ||
      !config.initial_scheme.IsSubsetOf(
          ProcessorSet::FirstN(num_processors))) {
    return util::Status::InvalidArgument("bad initial scheme");
  }
  if (config.algorithm == AlgorithmKind::kDynamic &&
      config.initial_scheme.Size() < 2) {
    return util::Status::InvalidArgument(
        "dynamic allocation needs at least two initial copies");
  }
  return util::Status::Ok();
}

void ObjectShard::Reserve(size_t expected_objects) {
  if (owns_directory_) directory_.Reserve(expected_objects);
  const size_t pages_needed =
      (expected_objects + kPageSlots - 1) >> kPageShift;
  if (pages_needed > pages_.size()) {
    pages_.reserve(pages_needed);
    while (pages_.size() < pages_needed) {
      pages_.push_back(std::make_unique<SlotRecord[]>(kPageSlots));
    }
  }
}

size_t ObjectShard::MemoryUsageBytes() const {
  size_t bytes = pages_.capacity() * sizeof(pages_[0]) +
                 pages_.size() * static_cast<size_t>(kPageSlots) *
                     sizeof(SlotRecord);
  bytes += free_slots_.capacity() * sizeof(uint32_t);
  bytes += cost_table_.capacity() * sizeof(CostEntry);
  bytes += directory_.MemoryUsageBytes();
  bytes += fallback_index_.MemoryUsageBytes();
  bytes += fallbacks_.capacity() * sizeof(fallbacks_[0]);
  bytes += degraded_.MemoryUsageBytes();
  bytes += degraded_list_.capacity() * sizeof(uint32_t);
  bytes += dirty_words_.capacity() * sizeof(uint64_t);
  return bytes;
}

uint32_t ObjectShard::AllocateSlot() {
  if (!free_slots_.empty()) [[unlikely]] {
    const uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    Slot(slot) = SlotRecord{};
    return slot;
  }
  // Two sentinels ride on uint32 slots (kInvalidSlot and the directory
  // tombstone), so the slab tops out just below them.
  OBJALLOC_CHECK_LT(slot_count_, 0xFFFFFFFEu) << "shard slot space exhausted";
  if ((slot_count_ >> kPageShift) == pages_.size()) {
    pages_.push_back(std::make_unique<SlotRecord[]>(kPageSlots));
  }
  return slot_count_++;
}

util::StatusOr<uint32_t> ObjectShard::AddObject(ObjectId id,
                                                const ObjectConfig& config) {
  if (owns_directory_ && directory_.Contains(id)) {
    return util::Status::InvalidArgument("duplicate object id " +
                                         std::to_string(id));
  }
  util::Status valid = ValidateConfig(config, num_processors_);
  if (!valid.ok()) {
    return util::Status(valid.code(),
                        valid.message() + " for object " + std::to_string(id));
  }
  const uint32_t slot = AllocateSlot();
  SlotRecord& record = Slot(slot);
  record.id = id;
  record.scheme_mask = config.initial_scheme.mask();
  int32_t p = -1;
  switch (config.algorithm) {
    case AlgorithmKind::kStatic:
      break;
    case AlgorithmKind::kDynamic: {
      ProcessorSet f;
      DynamicAllocation::SplitScheme(config.initial_scheme, &f, &p);
      record.f_mask = f.mask();
      break;
    }
    default: {
      auto fallback = CreateAlgorithm(config.algorithm, cost_model_);
      fallback->Reset(num_processors_, config.initial_scheme);
      fallback_index_.Insert(slot, static_cast<uint32_t>(fallbacks_.size()));
      fallbacks_.push_back(std::move(fallback));
      break;
    }
  }
  record.meta = SlotRecord::PackMeta(config.algorithm,
                                     config.initial_scheme.Size(), p,
                                     /*next_f=*/0, /*crash_log_pos=*/0);
  if (owns_directory_) directory_.Insert(id, slot);
  MarkDirty(slot);
  return slot;
}

double ObjectShard::ServeSlot(uint32_t slot, const Request& request,
                              model::CostBreakdown* delta) {
  SlotRecord& record = Slot(slot);
  const ProcessorId i = request.processor;
  model::CostBreakdown breakdown;
  double cost;
  const AlgorithmKind kind = record.kind();
  const int32_t t = record.t();
  switch (kind) {
    case AlgorithmKind::kStatic: {
      // StaticAllocation::Decide specialized per branch: the scheme never
      // changes, so the breakdown is a pure function of membership.
      const CostEntry& costs = CostsFor(kind, t);
      const ProcessorSet scheme(record.scheme_mask);
      if (request.is_read()) {
        if (scheme.Contains(i)) {
          breakdown.io_ops = 1;
          cost = costs.read_local;
        } else {
          breakdown.control_messages = 1;
          breakdown.data_messages = 1;
          breakdown.io_ops = 1;
          cost = costs.read_remote;
        }
      } else {
        // X == Q: no invalidations, |Q \ {i}| transfers, |Q| outputs.
        const bool member = scheme.Contains(i);
        breakdown.data_messages = t - (member ? 1 : 0);
        breakdown.io_ops = t;
        cost = member ? costs.write_a : costs.write_b;
      }
      break;
    }
    case AlgorithmKind::kDynamic: {
      const CostEntry& costs = CostsFor(kind, t);
      ProcessorSet scheme(record.scheme_mask);
      if (request.is_read()) {
        if (scheme.Contains(i)) {
          breakdown.io_ops = 1;
          cost = costs.read_local;
        } else {
          // Saving-read via the round-robin F member: one request, one
          // transfer, one input at the server plus the saving output at i.
          // Which F member serves is invisible to cost and scheme, but the
          // round-robin index is kept in lockstep with the reference class.
          const uint32_t f_size = static_cast<uint32_t>(t - 1);
          record.set_next_f((record.next_f() + 1) % f_size);
          scheme.Insert(i);
          record.scheme_mask = scheme.mask();
          breakdown.control_messages = 1;
          breakdown.data_messages = 1;
          breakdown.io_ops = 2;
          cost = costs.read_remote;
        }
      } else {
        const ProcessorSet x = DynamicAllocation::WriteSet(
            ProcessorSet(record.f_mask), record.p(), i);
        // Invalidations reach the stale copies other than the writer's own.
        const int64_t control = scheme.Minus(x).WithErased(i).Size();
        breakdown.control_messages = control;
        breakdown.data_messages = t - 1;
        breakdown.io_ops = t;
        cost = (static_cast<double>(control) * cost_model_.control +
                costs.write_a) +
               costs.write_b;
        record.scheme_mask = x.mask();
      }
      break;
    }
    default: {
      // Virtual fallback for the non-inlined kinds.
      Decision decision = FallbackAt(slot)->Step(request);
      model::AllocatedRequest entry{request, decision.execution_set,
                                    request.is_read() && decision.saving};
      ProcessorSet scheme(record.scheme_mask);
      breakdown = model::RequestBreakdown(entry, scheme);
      scheme = model::NextScheme(scheme, entry);
      OBJALLOC_CHECK_GE(scheme.Size(), t)
          << "algorithm violated the availability threshold of object "
          << record.id;
      record.scheme_mask = scheme.mask();
      cost = breakdown.Cost(cost_model_);
      break;
    }
  }
  record.requests += 1;
  record.breakdown += breakdown;
  total_requests_ += 1;
  total_breakdown_ += breakdown;
  MarkDirty(slot);
  if (delta != nullptr) *delta += breakdown;
  return cost;
}

void ObjectShard::ChargeMessages(bool control, int64_t count,
                                 size_t event_index,
                                 const FaultInjector& injector,
                                 uint64_t* ordinal,
                                 model::CostBreakdown* breakdown,
                                 FaultStats* stats) const {
  int64_t& field =
      control ? breakdown->control_messages : breakdown->data_messages;
  field += count;
  if (!injector.has_message_loss()) return;
  for (int64_t m = 0; m < count; ++m) {
    const uint32_t ord = static_cast<uint32_t>((*ordinal)++);
    const int lost = control ? injector.ControlRetries(event_index, ord)
                             : injector.DataRetries(event_index, ord);
    if (lost == 0) continue;
    field += lost;  // one retransmission per lost attempt
    (control ? stats->lost_control : stats->lost_data) += lost;
    stats->backoff_units += (int64_t{1} << lost) - 1;  // sum of 2^attempt
  }
}

void ObjectShard::MarkDegraded(uint32_t slot) {
  if (degraded_.Contains(slot)) return;
  degraded_.Insert(slot, 1);
  degraded_list_.push_back(slot);
}

void ObjectShard::SyncSlotWithCrashes(SlotRecord* record,
                                      const CrashLog& crash_log,
                                      size_t up_to_index) {
  // Log indices are nondecreasing, so stopping at the first future record
  // consumes exactly the crashes in (previous event, up_to_index]. Erase is
  // idempotent; a processor that crashed, recovered and rejoined is safe
  // because rejoining happens at a serve, which consumed the crash record
  // first.
  size_t pos = record->crash_log_pos();
  ProcessorSet scheme(record->scheme_mask);
  while (pos < crash_log.size() && crash_log[pos].index <= up_to_index) {
    scheme.Erase(crash_log[pos].processor);
    ++pos;
  }
  record->scheme_mask = scheme.mask();
  record->set_crash_log_pos(pos);
}

void ObjectShard::RepairScheme(SlotRecord* record, uint32_t slot,
                               ProcessorSet live, size_t event_index,
                               const FaultInjector& injector,
                               uint64_t* ordinal,
                               model::CostBreakdown* breakdown,
                               FaultStats* stats) {
  const int64_t backoff_before = stats->backoff_units;
  const int32_t t = record->t();
  ProcessorSet scheme(record->scheme_mask);
  // Deterministic re-replication: copy onto the lowest-id live processors
  // outside the scheme until t replicas exist. Each copy is charged as a
  // saving-read ({1 control, 1 data, 2 io} — the cost of creating a replica
  // at a reader), so repair traffic and request traffic share one currency.
  int added = 0;
  ProcessorSet candidates = live.Minus(scheme);
  while (static_cast<int32_t>(scheme.Size()) < t && !candidates.Empty()) {
    const ProcessorId target = candidates.First();
    candidates.Erase(target);
    scheme.Insert(target);
    ChargeMessages(/*control=*/true, 1, event_index, injector, ordinal,
                   breakdown, stats);
    ChargeMessages(/*control=*/false, 1, event_index, injector, ordinal,
                   breakdown, stats);
    breakdown->io_ops += 2;
    ++added;
  }
  OBJALLOC_CHECK_GE(static_cast<int32_t>(scheme.Size()), t)
      << "repair of object " << record->id
      << " could not reach t live replicas (caller must admit |live| >= t)";
  record->scheme_mask = scheme.mask();
  if (added > 0) {
    stats->repairs += 1;
    stats->replicas_added += added;
    // Virtual repair latency: two message hops per replica plus the backoff
    // spent retransmitting them.
    stats->repair_latency.push_back(static_cast<double>(
        2 * added + (stats->backoff_units - backoff_before)));
  }
  if (record->kind() == AlgorithmKind::kDynamic) {
    // Re-derive (F, p) from the t lowest members of the repaired scheme and
    // restart the round-robin read index — the same deterministic split a
    // fresh registration would produce.
    ProcessorSet base;
    int taken = 0;
    for (const ProcessorId member : scheme) {
      if (taken == t) break;
      base.Insert(member);
      ++taken;
    }
    ProcessorSet f;
    int32_t p = -1;
    DynamicAllocation::SplitScheme(base, &f, &p);
    record->f_mask = f.mask();
    record->set_p(p);
    record->set_next_f(0);
  }
  degraded_.Erase(slot);
}

double ObjectShard::ServeSlotFaulty(uint32_t slot, const Request& request,
                                    size_t event_index, ProcessorSet live,
                                    const CrashLog& crash_log,
                                    const FaultInjector& injector,
                                    model::CostBreakdown* delta,
                                    FaultStats* stats, bool check_invariant) {
  SlotRecord& record = Slot(slot);
  const ProcessorId i = request.processor;
  model::CostBreakdown breakdown;
  uint64_t ordinal = 0;
  // Lazy scrub: evict members crashed since the object's previous event.
  SyncSlotWithCrashes(&record, crash_log, event_index);
  const AlgorithmKind kind = record.kind();
  const int32_t t = record.t();
  // Entry repair: those crashes may have left the scheme below t or broken
  // DA's core set. Restore t live replicas before the decision rule runs so
  // it always sees a t-available scheme.
  if (static_cast<int32_t>(ProcessorSet(record.scheme_mask).Size()) < t ||
      (kind == AlgorithmKind::kDynamic &&
       !ProcessorSet(record.f_mask)
            .IsSubsetOf(ProcessorSet(record.scheme_mask)))) [[unlikely]] {
    RepairScheme(&record, slot, live, event_index, injector, &ordinal,
                 &breakdown, stats);
  }
  switch (kind) {
    case AlgorithmKind::kStatic: {
      const ProcessorSet scheme(record.scheme_mask);
      if (request.is_read()) {
        if (scheme.Contains(i)) {
          breakdown.io_ops += 1;
        } else {
          ChargeMessages(/*control=*/true, 1, event_index, injector, &ordinal,
                         &breakdown, stats);
          ChargeMessages(/*control=*/false, 1, event_index, injector,
                         &ordinal, &breakdown, stats);
          breakdown.io_ops += 1;
        }
      } else {
        // X = the (live) scheme: the lazy scrub evicted crashed members and
        // entry repair restored |Q| = t, so the full-replication write rule
        // is unchanged — only its transmissions can be lost.
        const bool member = scheme.Contains(i);
        const int64_t copies = scheme.Size();
        ChargeMessages(/*control=*/false, copies - (member ? 1 : 0),
                       event_index, injector, &ordinal, &breakdown, stats);
        breakdown.io_ops += copies;
      }
      break;
    }
    case AlgorithmKind::kDynamic: {
      if (request.is_read()) {
        ProcessorSet scheme(record.scheme_mask);
        if (scheme.Contains(i)) {
          breakdown.io_ops += 1;
        } else {
          // Saving-read, as in ServeSlot; the serving F member is live by
          // the scheme ⊆ live invariant.
          const uint32_t f_size = static_cast<uint32_t>(t - 1);
          record.set_next_f((record.next_f() + 1) % f_size);
          scheme.Insert(i);
          record.scheme_mask = scheme.mask();
          ChargeMessages(/*control=*/true, 1, event_index, injector, &ordinal,
                         &breakdown, stats);
          ChargeMessages(/*control=*/false, 1, event_index, injector,
                         &ordinal, &breakdown, stats);
          breakdown.io_ops += 2;
        }
      } else {
        // The rule's execution set intersected with the live world: the
        // floating processor p is not part of the scheme between writes, so
        // it can be dead without a preceding scrub — drop it here.
        const ProcessorSet scheme(record.scheme_mask);
        const ProcessorSet x =
            DynamicAllocation::WriteSet(ProcessorSet(record.f_mask),
                                        record.p(), i)
                .Intersect(live);
        const int64_t control = scheme.Minus(x).WithErased(i).Size();
        ChargeMessages(/*control=*/true, control, event_index, injector,
                       &ordinal, &breakdown, stats);
        ChargeMessages(/*control=*/false,
                       static_cast<int64_t>(x.WithErased(i).Size()),
                       event_index, injector, &ordinal, &breakdown, stats);
        breakdown.io_ops += x.Size();
        record.scheme_mask = x.mask();
        // Exit repair: the write itself may have shrunk the scheme below t
        // (dead floating processor). Re-replicate before the event ends so
        // the invariant holds at every event boundary.
        if (static_cast<int32_t>(x.Size()) < t) [[unlikely]] {
          RepairScheme(&record, slot, live, event_index, injector, &ordinal,
                       &breakdown, stats);
        }
      }
      break;
    }
    default:
      OBJALLOC_CHECK(false)
          << "fault injection supports only inlined algorithm kinds (object "
          << record.id << ")";
  }
  if (check_invariant) {
    const util::Status avail = model::CheckSchemeAvailable(
        ProcessorSet(record.scheme_mask), live, t);
    OBJALLOC_CHECK(avail.ok())
        << "object " << record.id << ": " << avail.ToString();
  }
  const double cost = breakdown.Cost(cost_model_);
  record.requests += 1;
  record.breakdown += breakdown;
  total_requests_ += 1;
  total_breakdown_ += breakdown;
  MarkDirty(slot);
  if (delta != nullptr) *delta += breakdown;
  return cost;
}

void ObjectShard::NoteCrash(ProcessorId p) {
  // Advisory registry only: membership is tested against the scheme as last
  // synchronized (possibly lagging the crash log), and the scheme is left
  // untouched — eviction belongs to the serve timeline. RepairAllDegraded
  // re-checks after applying pending records, so an over-mark heals to a
  // no-op repair.
  for (uint32_t slot = 0; slot < slot_count_; ++slot) {
    const SlotRecord& record = Slot(slot);
    if (record.id >= 0 && ProcessorSet(record.scheme_mask).Contains(p)) {
      MarkDegraded(slot);
    }
  }
}

void ObjectShard::FlushCrashLog(const CrashLog& crash_log) {
  for (uint32_t slot = 0; slot < slot_count_; ++slot) {
    SlotRecord& record = Slot(slot);
    if (record.id < 0) continue;
    SyncSlotWithCrashes(&record, crash_log,
                        std::numeric_limits<size_t>::max());
    record.set_crash_log_pos(0);
  }
  for (const uint32_t slot : degraded_list_) degraded_.Erase(slot);
  degraded_list_.clear();
  MarkAllDirty();  // every slot's crash-log cursor was rewritten
}

int64_t ObjectShard::RepairAllDegraded(ProcessorSet live, size_t event_index,
                                       const CrashLog& crash_log,
                                       const FaultInjector& injector,
                                       FaultStats* stats,
                                       bool check_invariant) {
  if (degraded_list_.empty()) return 0;
  // Lowest slots first; dedupe re-marks that accumulated after lazy repairs.
  std::sort(degraded_list_.begin(), degraded_list_.end());
  degraded_list_.erase(
      std::unique(degraded_list_.begin(), degraded_list_.end()),
      degraded_list_.end());
  std::vector<uint32_t> remaining;
  const int64_t before = stats->replicas_added;
  for (const uint32_t slot : degraded_list_) {
    if (!degraded_.Contains(slot)) continue;  // already repaired lazily
    SlotRecord& record = Slot(slot);
    if (static_cast<int32_t>(live.Size()) < record.t()) {
      remaining.push_back(slot);  // cannot reach t now; stays degraded
      continue;
    }
    // Apply pending crash records first: the mark was taken against a
    // possibly-lagging scheme, and repairing before eviction could top up
    // to t while a dead member lingers.
    SyncSlotWithCrashes(&record, crash_log, event_index);
    model::CostBreakdown breakdown;
    // Ordinal space partitioned by slot: repairs of distinct objects at the
    // same fault-time index draw independent loss samples.
    uint64_t ordinal = static_cast<uint64_t>(slot) * 128;
    RepairScheme(&record, slot, live, event_index, injector, &ordinal,
                 &breakdown, stats);
    record.breakdown += breakdown;
    total_breakdown_ += breakdown;
    MarkDirty(slot);
    if (check_invariant) {
      const util::Status avail = model::CheckSchemeAvailable(
          ProcessorSet(record.scheme_mask), live, record.t());
      OBJALLOC_CHECK(avail.ok())
          << "object " << record.id << ": " << avail.ToString();
    }
  }
  degraded_list_ = std::move(remaining);
  return stats->replicas_added - before;
}

util::StatusOr<double> ObjectShard::Serve(ObjectId id,
                                          const Request& request) {
  const uint32_t slot = SlotOf(id);
  if (slot == kInvalidSlot) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  if (request.processor < 0 || request.processor >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  return ServeSlot(slot, request, nullptr);
}

util::StatusOr<ObjectStats> ObjectShard::StatsFor(ObjectId id) const {
  const uint32_t slot = SlotOf(id);
  if (slot == kInvalidSlot) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  return StatsAt(slot);
}

ObjectStats ObjectShard::StatsAt(uint32_t slot) const {
  const SlotRecord& record = Slot(slot);
  ObjectStats stats;
  stats.requests = record.requests;
  stats.breakdown = record.breakdown;
  stats.scheme = ProcessorSet(record.scheme_mask);
  return stats;
}

std::vector<ObjectId> ObjectShard::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(object_count());
  for (uint32_t slot = 0; slot < slot_count_; ++slot) {
    const ObjectId id = Slot(slot).id;
    if (id >= 0) ids.push_back(id);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ObjectShard::AppendSnapshotHeader(std::string* out) const {
  util::AppendScalar(static_cast<uint64_t>(object_count()), out);
}

void ObjectShard::AppendSnapshotSlots(uint32_t begin, uint32_t end,
                                      std::string* out) const {
  using util::AppendScalar;
  for (uint32_t slot = begin; slot < end; ++slot) {
    const SlotRecord& record = Slot(slot);
    if (record.id < 0) continue;  // free-listed hole
    AppendScalar(record.id, out);
    AppendScalar(static_cast<uint8_t>(record.kind()), out);
    AppendScalar(record.t(), out);
    AppendScalar(record.scheme_mask, out);
    AppendScalar(record.f_mask, out);
    AppendScalar(record.p(), out);
    AppendScalar(record.next_f(), out);
    AppendScalar(static_cast<uint64_t>(record.crash_log_pos()), out);
    AppendScalar(record.requests, out);
    AppendScalar(record.breakdown.control_messages, out);
    AppendScalar(record.breakdown.data_messages, out);
    AppendScalar(record.breakdown.io_ops, out);
  }
}

void ObjectShard::AppendSnapshotFooter(std::string* out) const {
  using util::AppendScalar;
  AppendScalar(total_requests_, out);
  AppendScalar(total_breakdown_.control_messages, out);
  AppendScalar(total_breakdown_.data_messages, out);
  AppendScalar(total_breakdown_.io_ops, out);
  // Degraded registry, filtered to the slots still actually registered
  // (the list may hold entries already healed lazily). Order is irrelevant:
  // RepairAllDegraded sorts before every sweep.
  uint32_t degraded = 0;
  for (const uint32_t slot : degraded_list_) {
    if (degraded_.Contains(slot)) ++degraded;
  }
  AppendScalar(degraded, out);
  for (const uint32_t slot : degraded_list_) {
    if (degraded_.Contains(slot)) AppendScalar(slot, out);
  }
}

void ObjectShard::AppendSnapshot(std::string* out) const {
  AppendSnapshotHeader(out);
  AppendSnapshotSlots(0, slot_count_, out);
  AppendSnapshotFooter(out);
}

util::Status ObjectShard::RestoreSlotRecord(util::PayloadReader* reader) {
  ObjectId id = -1;
  uint8_t kind_raw = 0;
  int32_t t = 0, p = -1;
  uint64_t scheme_mask = 0, f_mask = 0, crash_log_pos = 0;
  uint32_t next_f = 0;
  int64_t requests = 0;
  model::CostBreakdown breakdown;
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&id));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&kind_raw));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&t));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&scheme_mask));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&f_mask));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&p));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&next_f));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&crash_log_pos));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&requests));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&breakdown.control_messages));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&breakdown.data_messages));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&breakdown.io_ops));
  const AlgorithmKind kind = static_cast<AlgorithmKind>(kind_raw);
  if (kind != AlgorithmKind::kStatic && kind != AlgorithmKind::kDynamic) {
    return util::Status::Internal(
        "shard snapshot: non-inlined algorithm kind " +
        std::to_string(kind_raw));
  }
  if (t < 1 || t > num_processors_) {
    return util::Status::Internal("shard snapshot: bad threshold " +
                                  std::to_string(t));
  }
  const ProcessorSet world = ProcessorSet::FirstN(num_processors_);
  if (!ProcessorSet(scheme_mask).IsSubsetOf(world) ||
      !ProcessorSet(f_mask).IsSubsetOf(world)) {
    return util::Status::Internal(
        "shard snapshot: scheme names out-of-range processors");
  }
  if (p < -1 || p >= num_processors_) {
    return util::Status::Internal(
        "shard snapshot: floating processor out of range");
  }
  // Bit-packing bounds: next_f indexes F (< t <= 64) and the crash-log
  // cursor rides the meta word's high half.
  if (next_f > 0x7F) {
    return util::Status::Internal("shard snapshot: round-robin index " +
                                  std::to_string(next_f) + " out of range");
  }
  if (crash_log_pos > 0xFFFFFFFFull) {
    return util::Status::Internal("shard snapshot: crash-log cursor " +
                                  std::to_string(crash_log_pos) +
                                  " out of range");
  }
  if (owns_directory_ && directory_.Contains(id)) {
    return util::Status::Internal("shard snapshot: duplicate object id " +
                                  std::to_string(id));
  }
  const uint32_t slot = AllocateSlot();
  SlotRecord& record = Slot(slot);
  record.id = id;
  record.scheme_mask = scheme_mask;
  record.f_mask = f_mask;
  record.meta = SlotRecord::PackMeta(kind, t, p, next_f,
                                     static_cast<size_t>(crash_log_pos));
  record.requests = requests;
  record.breakdown = breakdown;
  if (owns_directory_) directory_.Insert(id, slot);
  return util::Status::Ok();
}

util::Status ObjectShard::RestoreSnapshotFooter(util::PayloadReader* reader) {
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&total_requests_));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&total_breakdown_.control_messages));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&total_breakdown_.data_messages));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&total_breakdown_.io_ops));
  uint32_t degraded = 0;
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&degraded));
  if (reader->remaining() != static_cast<size_t>(degraded) * 4) {
    return util::Status::Internal("shard snapshot: degraded registry size");
  }
  for (uint32_t d = 0; d < degraded; ++d) {
    uint32_t slot = 0;
    OBJALLOC_RETURN_IF_ERROR(reader->Read(&slot));
    if (slot >= slot_count_) {
      return util::Status::Internal(
          "shard snapshot: degraded slot out of range");
    }
    MarkDegraded(slot);
  }
  return util::Status::Ok();
}

util::Status ObjectShard::RestoreSnapshotChunk(std::string_view chunk,
                                               bool last) {
  if (restore_.done) {
    return util::Status::Internal("shard snapshot: chunk after final chunk");
  }
  if (!restore_.header_done && slot_count_ != 0) {
    return util::Status::Internal(
        "RestoreSnapshot requires a freshly constructed shard");
  }
  std::string_view data = chunk;
  if (!restore_.carry.empty()) {
    restore_.carry.append(chunk.data(), chunk.size());
    data = restore_.carry;
  }
  util::PayloadReader reader(data);
  if (!restore_.header_done && reader.remaining() >= sizeof(uint64_t)) {
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&restore_.expected));
    restore_.header_done = true;
    Reserve(static_cast<size_t>(restore_.expected));
  }
  if (restore_.header_done) {
    while (restore_.restored < restore_.expected &&
           reader.remaining() >= kSnapshotSlotBytes) {
      OBJALLOC_RETURN_IF_ERROR(RestoreSlotRecord(&reader));
      ++restore_.restored;
    }
  }
  if (last) {
    if (!restore_.header_done || restore_.restored < restore_.expected) {
      return util::Status::Internal("shard snapshot: slot table truncated");
    }
    OBJALLOC_RETURN_IF_ERROR(RestoreSnapshotFooter(&reader));
    restore_.carry.clear();
    restore_.done = true;
    return util::Status::Ok();
  }
  // Carry the incomplete tail (partial slot record or footer prefix) into
  // the next chunk; bounded by one record plus the footer head.
  std::string rest(data.substr(data.size() - reader.remaining()));
  restore_.carry = std::move(rest);
  return util::Status::Ok();
}

util::Status ObjectShard::RestoreSnapshot(std::string_view payload) {
  if (slot_count_ != 0 || restore_.header_done) {
    return util::Status::Internal(
        "RestoreSnapshot requires a freshly constructed shard");
  }
  return RestoreSnapshotChunk(payload, /*last=*/true);
}

// --- Delta checkpoints --------------------------------------------------

void ObjectShard::EnableDirtyTracking() {
  dirty_tracking_ = true;
  MarkAllDirty();
}

void ObjectShard::DisableDirtyTracking() {
  dirty_tracking_ = false;
  dirty_words_.clear();
  dirty_words_.shrink_to_fit();
}

void ObjectShard::ClearDirty() {
  std::fill(dirty_words_.begin(), dirty_words_.end(), 0);
}

void ObjectShard::MarkAllDirty() {
  if (!dirty_tracking_) return;
  const uint32_t pages =
      (slot_count_ + kPageMask) >> kPageShift;
  const size_t words = (static_cast<size_t>(pages) + 63) / 64;
  if (words > dirty_words_.size()) dirty_words_.resize(words, 0);
  for (uint32_t page = 0; page < pages; ++page) {
    dirty_words_[page >> 6] |= uint64_t{1} << (page & 63);
  }
}

void ObjectShard::CollectDirtyRanges(
    std::vector<std::pair<uint32_t, uint32_t>>* out) const {
  out->clear();
  const uint32_t pages = (slot_count_ + kPageMask) >> kPageShift;
  uint32_t run_begin = 0;
  bool in_run = false;
  for (uint32_t page = 0; page < pages; ++page) {
    const size_t word = page >> 6;
    const bool dirty =
        word < dirty_words_.size() &&
        (dirty_words_[word] & (uint64_t{1} << (page & 63))) != 0;
    if (dirty && !in_run) {
      run_begin = page;
      in_run = true;
    } else if (!dirty && in_run) {
      out->emplace_back(run_begin << kPageShift,
                        static_cast<uint32_t>(std::min<uint64_t>(
                            slot_count_, uint64_t{page} << kPageShift)));
      in_run = false;
    }
  }
  if (in_run) {
    out->emplace_back(run_begin << kPageShift,
                      static_cast<uint32_t>(std::min<uint64_t>(
                          slot_count_, uint64_t{pages} << kPageShift)));
  }
}

void ObjectShard::AppendDeltaHeader(uint32_t range_count,
                                    std::string* out) const {
  util::AppendScalar(static_cast<uint64_t>(slot_count_), out);
  util::AppendScalar(range_count, out);
}

void ObjectShard::AppendDeltaRange(uint32_t begin, uint32_t end,
                                   std::string* out) const {
  using util::AppendScalar;
  AppendScalar(begin, out);
  AppendScalar(end, out);
  for (uint32_t slot = begin; slot < end; ++slot) {
    const SlotRecord& record = Slot(slot);
    if (record.id < 0) {
      AppendScalar(static_cast<uint8_t>(0), out);
      continue;
    }
    AppendScalar(static_cast<uint8_t>(1), out);
    AppendScalar(record.id, out);
    AppendScalar(static_cast<uint8_t>(record.kind()), out);
    AppendScalar(record.t(), out);
    AppendScalar(record.scheme_mask, out);
    AppendScalar(record.f_mask, out);
    AppendScalar(record.p(), out);
    AppendScalar(record.next_f(), out);
    AppendScalar(static_cast<uint64_t>(record.crash_log_pos()), out);
    AppendScalar(record.requests, out);
    AppendScalar(record.breakdown.control_messages, out);
    AppendScalar(record.breakdown.data_messages, out);
    AppendScalar(record.breakdown.io_ops, out);
  }
}

void ObjectShard::BeginDeltaRestore() { delta_restore_ = DeltaProgress{}; }

util::Status ObjectShard::RestoreDeltaSlot(uint32_t slot,
                                           util::PayloadReader* reader) {
  uint8_t present = 0;
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&present));
  SlotRecord& record = Slot(slot);
  if (present == 0) {
    // The slot was empty at snapshot time. With no removal API this only
    // names never-yet-allocated slots, but handle an occupied one anyway:
    // the delta is authoritative for every slot it covers.
    if (record.id >= 0) {
      if (owns_directory_) directory_.Erase(record.id);
      record = SlotRecord{};
      free_slots_.push_back(slot);
    }
    return util::Status::Ok();
  }
  ObjectId id = -1;
  uint8_t kind_raw = 0;
  int32_t t = 0, p = -1;
  uint64_t scheme_mask = 0, f_mask = 0, crash_log_pos = 0;
  uint32_t next_f = 0;
  int64_t requests = 0;
  model::CostBreakdown breakdown;
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&id));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&kind_raw));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&t));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&scheme_mask));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&f_mask));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&p));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&next_f));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&crash_log_pos));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&requests));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&breakdown.control_messages));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&breakdown.data_messages));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&breakdown.io_ops));
  const AlgorithmKind kind = static_cast<AlgorithmKind>(kind_raw);
  if (kind != AlgorithmKind::kStatic && kind != AlgorithmKind::kDynamic) {
    return util::Status::Internal("shard delta: non-inlined algorithm kind " +
                                  std::to_string(kind_raw));
  }
  if (t < 1 || t > num_processors_) {
    return util::Status::Internal("shard delta: bad threshold " +
                                  std::to_string(t));
  }
  const ProcessorSet world = ProcessorSet::FirstN(num_processors_);
  if (!ProcessorSet(scheme_mask).IsSubsetOf(world) ||
      !ProcessorSet(f_mask).IsSubsetOf(world)) {
    return util::Status::Internal(
        "shard delta: scheme names out-of-range processors");
  }
  if (p < -1 || p >= num_processors_) {
    return util::Status::Internal(
        "shard delta: floating processor out of range");
  }
  if (next_f > 0x7F || crash_log_pos > 0xFFFFFFFFull) {
    return util::Status::Internal("shard delta: packed field out of range");
  }
  if (owns_directory_) {
    if (record.id >= 0 && record.id != id) directory_.Erase(record.id);
    const uint32_t existing = directory_.Find(id);
    if (existing == kInvalidSlot) {
      directory_.Insert(id, slot);
    } else if (existing != slot) {
      return util::Status::Internal("shard delta: duplicate object id " +
                                    std::to_string(id));
    }
  }
  record.id = id;
  record.scheme_mask = scheme_mask;
  record.f_mask = f_mask;
  record.meta = SlotRecord::PackMeta(kind, t, p, next_f,
                                     static_cast<size_t>(crash_log_pos));
  record.requests = requests;
  record.breakdown = breakdown;
  return util::Status::Ok();
}

util::Status ObjectShard::RestoreDeltaChunk(std::string_view chunk,
                                            bool last) {
  DeltaProgress& d = delta_restore_;
  if (d.done) {
    return util::Status::Internal("shard delta: chunk after final chunk");
  }
  std::string_view data = chunk;
  if (!d.carry.empty()) {
    d.carry.append(chunk.data(), chunk.size());
    data = d.carry;
  }
  util::PayloadReader reader(data);
  size_t committed = 0;  // offset of the first byte not yet consumed whole
  if (!d.header_done) {
    if (reader.remaining() >= sizeof(uint64_t) + sizeof(uint32_t)) {
      uint64_t span = 0;
      OBJALLOC_RETURN_IF_ERROR(reader.Read(&span));
      OBJALLOC_RETURN_IF_ERROR(reader.Read(&d.ranges_total));
      if (span < slot_count_ || span >= 0xFFFFFFFEull) {
        return util::Status::Internal("shard delta: bad slot span " +
                                      std::to_string(span));
      }
      // Grow the slab to the delta's span: the new slots were allocated
      // during the delta window and arrive inside its dirty ranges.
      const size_t pages_needed =
          (static_cast<size_t>(span) + kPageSlots - 1) >> kPageShift;
      while (pages_.size() < pages_needed) {
        pages_.push_back(std::make_unique<SlotRecord[]>(kPageSlots));
      }
      slot_count_ = static_cast<uint32_t>(span);
      d.header_done = true;
      committed = data.size() - reader.remaining();
    }
  }
  if (d.header_done) {
    while (d.ranges_done < d.ranges_total) {
      if (!d.in_range) {
        if (reader.remaining() < 2 * sizeof(uint32_t)) break;
        uint32_t begin = 0, end = 0;
        OBJALLOC_RETURN_IF_ERROR(reader.Read(&begin));
        OBJALLOC_RETURN_IF_ERROR(reader.Read(&end));
        if (begin > end || end > slot_count_) {
          return util::Status::Internal("shard delta: bad slot range");
        }
        d.cursor = begin;
        d.range_end = end;
        d.in_range = true;
        committed = data.size() - reader.remaining();
      }
      bool need_more = false;
      while (d.cursor < d.range_end) {
        // A unit is 1 presence byte, plus the full record when present;
        // peek the presence byte without consuming a partial unit.
        const size_t avail = reader.remaining();
        if (avail < 1) {
          need_more = true;
          break;
        }
        const uint8_t present =
            static_cast<uint8_t>(data[data.size() - avail]);
        if (present != 0 && avail < 1 + kSnapshotSlotBytes) {
          need_more = true;
          break;
        }
        OBJALLOC_RETURN_IF_ERROR(RestoreDeltaSlot(d.cursor, &reader));
        ++d.cursor;
        committed = data.size() - reader.remaining();
      }
      if (need_more) break;
      if (d.cursor == d.range_end) {
        d.in_range = false;
        ++d.ranges_done;
      }
    }
  }
  if (last) {
    if (!d.header_done || d.ranges_done < d.ranges_total || d.in_range) {
      return util::Status::Internal("shard delta: range table truncated");
    }
    // The footer *replaces* the aggregates and the degraded registry.
    for (const uint32_t slot : degraded_list_) degraded_.Erase(slot);
    degraded_list_.clear();
    OBJALLOC_RETURN_IF_ERROR(RestoreSnapshotFooter(&reader));
    d.carry.clear();
    d.done = true;
    return util::Status::Ok();
  }
  // Keep everything past the last whole unit for the next chunk. When the
  // range table is complete the remainder is the footer, which is parsed
  // only on the final chunk.
  if (d.ranges_done == d.ranges_total && d.header_done) {
    committed = data.size() - reader.remaining();
    std::string rest(data.substr(committed));
    d.carry = std::move(rest);
    return util::Status::Ok();
  }
  std::string rest(data.substr(committed));
  d.carry = std::move(rest);
  return util::Status::Ok();
}

}  // namespace objalloc::core
