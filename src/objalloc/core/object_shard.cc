#include "objalloc/core/object_shard.h"

#include <algorithm>

#include "objalloc/util/logging.h"

namespace objalloc::core {

ObjectShard::ObjectShard(int num_processors,
                         const model::CostModel& cost_model)
    : num_processors_(num_processors), cost_model_(cost_model) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
}

util::Status ObjectShard::AddObject(ObjectId id, const ObjectConfig& config) {
  if (objects_.count(id) > 0) {
    return util::Status::InvalidArgument("duplicate object id " +
                                         std::to_string(id));
  }
  if (config.initial_scheme.Empty() ||
      !config.initial_scheme.IsSubsetOf(
          ProcessorSet::FirstN(num_processors_))) {
    return util::Status::InvalidArgument("bad initial scheme for object " +
                                         std::to_string(id));
  }
  if (config.algorithm == AlgorithmKind::kDynamic &&
      config.initial_scheme.Size() < 2) {
    return util::Status::InvalidArgument(
        "dynamic allocation needs at least two initial copies");
  }
  ObjectState state;
  state.algorithm = CreateAlgorithm(config.algorithm, cost_model_);
  state.algorithm->Reset(num_processors_, config.initial_scheme);
  state.t = config.initial_scheme.Size();
  state.scheme = config.initial_scheme;
  state.stats.scheme = config.initial_scheme;
  objects_.emplace(id, std::move(state));
  return util::Status::Ok();
}

double ObjectShard::ServeState(ObjectId id, ObjectState& state,
                               const Request& request,
                               model::CostBreakdown* delta) {
  Decision decision = state.algorithm->Step(request);
  model::AllocatedRequest entry{request, decision.execution_set,
                                request.is_read() && decision.saving};
  model::CostBreakdown breakdown =
      model::RequestBreakdown(entry, state.scheme);
  state.scheme = model::NextScheme(state.scheme, entry);
  OBJALLOC_CHECK_GE(state.scheme.Size(), state.t)
      << "algorithm violated the availability threshold of object " << id;
  state.stats.requests += 1;
  state.stats.breakdown += breakdown;
  state.stats.scheme = state.scheme;
  total_requests_ += 1;
  total_breakdown_ += breakdown;
  if (delta != nullptr) *delta += breakdown;
  return breakdown.Cost(cost_model_);
}

util::StatusOr<double> ObjectShard::Serve(ObjectId id,
                                          const Request& request) {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  if (request.processor < 0 || request.processor >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  return ServeState(id, it->second, request, nullptr);
}

double ObjectShard::ServeAdmitted(ObjectId id, const Request& request,
                                  model::CostBreakdown* delta) {
  auto it = objects_.find(id);
  OBJALLOC_CHECK(it != objects_.end()) << "unadmitted object " << id;
  return ServeState(id, it->second, request, delta);
}

util::StatusOr<ObjectStats> ObjectShard::StatsFor(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  return it->second.stats;
}

std::vector<ObjectId> ObjectShard::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(objects_.size());
  for (const auto& [id, state] : objects_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace objalloc::core
