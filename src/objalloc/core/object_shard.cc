#include "objalloc/core/object_shard.h"

#include <algorithm>
#include <limits>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/model/legality.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/record_io.h"

namespace objalloc::core {

ObjectShard::ObjectShard(int num_processors,
                         const model::CostModel& cost_model)
    : num_processors_(num_processors), cost_model_(cost_model) {
  OBJALLOC_CHECK_GT(num_processors, 0);
  OBJALLOC_CHECK_LE(num_processors, util::kMaxProcessors);
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();
}

util::Status ObjectShard::ValidateConfig(const ObjectConfig& config,
                                         int num_processors) {
  if (config.initial_scheme.Empty() ||
      !config.initial_scheme.IsSubsetOf(
          ProcessorSet::FirstN(num_processors))) {
    return util::Status::InvalidArgument("bad initial scheme");
  }
  if (config.algorithm == AlgorithmKind::kDynamic &&
      config.initial_scheme.Size() < 2) {
    return util::Status::InvalidArgument(
        "dynamic allocation needs at least two initial copies");
  }
  return util::Status::Ok();
}

void ObjectShard::InitSlotCosts(SlotState* state) const {
  const double cc = cost_model_.control;
  const double cd = cost_model_.data;
  const double cio = cost_model_.io;
  state->cost_read_local = cio;  // {0,0,1}: (0 + 0) + 1*cio
  switch (state->kind) {
    case AlgorithmKind::kStatic: {
      // Q is pinned; every per-pattern cost is a constant of |Q|.
      const double q = static_cast<double>(state->t);
      state->cost_read_remote = (cc + cd) + cio;          // {1,1,1}
      state->cost_write_a = (q - 1) * cd + q * cio;       // {0,|Q|-1,|Q|}
      state->cost_write_b = q * cd + q * cio;             // {0,|Q|,|Q|}
      break;
    }
    case AlgorithmKind::kDynamic: {
      // The scheme after every write has size t, so the data and io terms
      // of a write are constants; only the control term (invalidations of
      // saving-readers) varies per event.
      const double t = static_cast<double>(state->t);
      state->cost_read_remote = (cc + cd) + 2 * cio;      // {1,1,2} saving
      state->cost_write_a = (t - 1) * cd;                 // data term
      state->cost_write_b = t * cio;                      // io term
      break;
    }
    default:
      break;  // fallback kinds cost through the virtual path
  }
}

util::Status ObjectShard::AddObject(ObjectId id, const ObjectConfig& config) {
  if (directory_.Contains(id)) {
    return util::Status::InvalidArgument("duplicate object id " +
                                         std::to_string(id));
  }
  util::Status valid = ValidateConfig(config, num_processors_);
  if (!valid.ok()) {
    return util::Status(valid.code(),
                        valid.message() + " for object " + std::to_string(id));
  }
  SlotState state;
  state.id = id;
  state.kind = config.algorithm;
  state.t = config.initial_scheme.Size();
  state.scheme = config.initial_scheme;
  InitSlotCosts(&state);
  switch (config.algorithm) {
    case AlgorithmKind::kStatic:
      break;
    case AlgorithmKind::kDynamic:
      DynamicAllocation::SplitScheme(config.initial_scheme, &state.f,
                                     &state.p);
      break;
    default: {
      state.fallback = CreateAlgorithm(config.algorithm, cost_model_);
      state.fallback->Reset(num_processors_, config.initial_scheme);
      fallback_objects_ += 1;
      break;
    }
  }
  directory_.Insert(id, static_cast<uint32_t>(slots_.size()));
  slots_.push_back(std::move(state));
  return util::Status::Ok();
}

double ObjectShard::ServeSlot(uint32_t slot, const Request& request,
                              model::CostBreakdown* delta) {
  SlotState& state = slots_[slot];
  const ProcessorId i = request.processor;
  model::CostBreakdown breakdown;
  double cost;
  switch (state.kind) {
    case AlgorithmKind::kStatic: {
      // StaticAllocation::Decide specialized per branch: the scheme never
      // changes, so the breakdown is a pure function of membership.
      if (request.is_read()) {
        if (state.scheme.Contains(i)) {
          breakdown.io_ops = 1;
          cost = state.cost_read_local;
        } else {
          breakdown.control_messages = 1;
          breakdown.data_messages = 1;
          breakdown.io_ops = 1;
          cost = state.cost_read_remote;
        }
      } else {
        // X == Q: no invalidations, |Q \ {i}| transfers, |Q| outputs.
        const bool member = state.scheme.Contains(i);
        breakdown.data_messages = state.t - (member ? 1 : 0);
        breakdown.io_ops = state.t;
        cost = member ? state.cost_write_a : state.cost_write_b;
      }
      break;
    }
    case AlgorithmKind::kDynamic: {
      if (request.is_read()) {
        if (state.scheme.Contains(i)) {
          breakdown.io_ops = 1;
          cost = state.cost_read_local;
        } else {
          // Saving-read via the round-robin F member: one request, one
          // transfer, one input at the server plus the saving output at i.
          // Which F member serves is invisible to cost and scheme, but the
          // round-robin index is kept in lockstep with the reference class.
          const uint32_t f_size = static_cast<uint32_t>(state.t - 1);
          state.next_f = (state.next_f + 1) % f_size;
          state.scheme.Insert(i);
          breakdown.control_messages = 1;
          breakdown.data_messages = 1;
          breakdown.io_ops = 2;
          cost = state.cost_read_remote;
        }
      } else {
        const ProcessorSet x = DynamicAllocation::WriteSet(state.f, state.p, i);
        // Invalidations reach the stale copies other than the writer's own.
        const int64_t control = state.scheme.Minus(x).WithErased(i).Size();
        breakdown.control_messages = control;
        breakdown.data_messages = state.t - 1;
        breakdown.io_ops = state.t;
        cost = (static_cast<double>(control) * cost_model_.control +
                state.cost_write_a) +
               state.cost_write_b;
        state.scheme = x;
      }
      break;
    }
    default: {
      // Virtual fallback for the non-inlined kinds.
      Decision decision = state.fallback->Step(request);
      model::AllocatedRequest entry{request, decision.execution_set,
                                    request.is_read() && decision.saving};
      breakdown = model::RequestBreakdown(entry, state.scheme);
      state.scheme = model::NextScheme(state.scheme, entry);
      OBJALLOC_CHECK_GE(state.scheme.Size(), state.t)
          << "algorithm violated the availability threshold of object "
          << state.id;
      cost = breakdown.Cost(cost_model_);
      break;
    }
  }
  state.requests += 1;
  state.breakdown += breakdown;
  total_requests_ += 1;
  total_breakdown_ += breakdown;
  if (delta != nullptr) *delta += breakdown;
  return cost;
}

void ObjectShard::ChargeMessages(bool control, int64_t count,
                                 size_t event_index,
                                 const FaultInjector& injector,
                                 uint64_t* ordinal,
                                 model::CostBreakdown* breakdown,
                                 FaultStats* stats) const {
  int64_t& field =
      control ? breakdown->control_messages : breakdown->data_messages;
  field += count;
  if (!injector.has_message_loss()) return;
  for (int64_t m = 0; m < count; ++m) {
    const uint32_t ord = static_cast<uint32_t>((*ordinal)++);
    const int lost = control ? injector.ControlRetries(event_index, ord)
                             : injector.DataRetries(event_index, ord);
    if (lost == 0) continue;
    field += lost;  // one retransmission per lost attempt
    (control ? stats->lost_control : stats->lost_data) += lost;
    stats->backoff_units += (int64_t{1} << lost) - 1;  // sum of 2^attempt
  }
}

void ObjectShard::MarkDegraded(uint32_t slot) {
  if (degraded_.Contains(slot)) return;
  degraded_.Insert(slot, 1);
  degraded_list_.push_back(slot);
}

void ObjectShard::SyncSlotWithCrashes(SlotState* state,
                                      const CrashLog& crash_log,
                                      size_t up_to_index) {
  // Log indices are nondecreasing, so stopping at the first future record
  // consumes exactly the crashes in (previous event, up_to_index]. Erase is
  // idempotent; a processor that crashed, recovered and rejoined is safe
  // because rejoining happens at a serve, which consumed the crash record
  // first.
  size_t pos = state->crash_log_pos;
  while (pos < crash_log.size() && crash_log[pos].index <= up_to_index) {
    state->scheme.Erase(crash_log[pos].processor);
    ++pos;
  }
  state->crash_log_pos = pos;
}

void ObjectShard::RepairScheme(SlotState* state, uint32_t slot,
                               ProcessorSet live, size_t event_index,
                               const FaultInjector& injector,
                               uint64_t* ordinal,
                               model::CostBreakdown* breakdown,
                               FaultStats* stats) {
  const int64_t backoff_before = stats->backoff_units;
  // Deterministic re-replication: copy onto the lowest-id live processors
  // outside the scheme until t replicas exist. Each copy is charged as a
  // saving-read ({1 control, 1 data, 2 io} — the cost of creating a replica
  // at a reader), so repair traffic and request traffic share one currency.
  int added = 0;
  ProcessorSet candidates = live.Minus(state->scheme);
  while (static_cast<int32_t>(state->scheme.Size()) < state->t &&
         !candidates.Empty()) {
    const ProcessorId target = candidates.First();
    candidates.Erase(target);
    state->scheme.Insert(target);
    ChargeMessages(/*control=*/true, 1, event_index, injector, ordinal,
                   breakdown, stats);
    ChargeMessages(/*control=*/false, 1, event_index, injector, ordinal,
                   breakdown, stats);
    breakdown->io_ops += 2;
    ++added;
  }
  OBJALLOC_CHECK_GE(static_cast<int32_t>(state->scheme.Size()), state->t)
      << "repair of object " << state->id
      << " could not reach t live replicas (caller must admit |live| >= t)";
  if (added > 0) {
    stats->repairs += 1;
    stats->replicas_added += added;
    // Virtual repair latency: two message hops per replica plus the backoff
    // spent retransmitting them.
    stats->repair_latency.push_back(static_cast<double>(
        2 * added + (stats->backoff_units - backoff_before)));
  }
  if (state->kind == AlgorithmKind::kDynamic) {
    // Re-derive (F, p) from the t lowest members of the repaired scheme and
    // restart the round-robin read index — the same deterministic split a
    // fresh registration would produce.
    ProcessorSet base;
    int taken = 0;
    for (const ProcessorId member : state->scheme) {
      if (taken == state->t) break;
      base.Insert(member);
      ++taken;
    }
    DynamicAllocation::SplitScheme(base, &state->f, &state->p);
    state->next_f = 0;
  }
  degraded_.Erase(slot);
}

double ObjectShard::ServeSlotFaulty(uint32_t slot, const Request& request,
                                    size_t event_index, ProcessorSet live,
                                    const CrashLog& crash_log,
                                    const FaultInjector& injector,
                                    model::CostBreakdown* delta,
                                    FaultStats* stats, bool check_invariant) {
  SlotState& state = slots_[slot];
  const ProcessorId i = request.processor;
  model::CostBreakdown breakdown;
  uint64_t ordinal = 0;
  // Lazy scrub: evict members crashed since the object's previous event.
  SyncSlotWithCrashes(&state, crash_log, event_index);
  // Entry repair: those crashes may have left the scheme below t or broken
  // DA's core set. Restore t live replicas before the decision rule runs so
  // it always sees a t-available scheme.
  if (static_cast<int32_t>(state.scheme.Size()) < state.t ||
      (state.kind == AlgorithmKind::kDynamic &&
       !state.f.IsSubsetOf(state.scheme))) [[unlikely]] {
    RepairScheme(&state, slot, live, event_index, injector, &ordinal,
                 &breakdown, stats);
  }
  switch (state.kind) {
    case AlgorithmKind::kStatic: {
      if (request.is_read()) {
        if (state.scheme.Contains(i)) {
          breakdown.io_ops += 1;
        } else {
          ChargeMessages(/*control=*/true, 1, event_index, injector, &ordinal,
                         &breakdown, stats);
          ChargeMessages(/*control=*/false, 1, event_index, injector,
                         &ordinal, &breakdown, stats);
          breakdown.io_ops += 1;
        }
      } else {
        // X = the (live) scheme: the lazy scrub evicted crashed members and
        // entry repair restored |Q| = t, so the full-replication write rule
        // is unchanged — only its transmissions can be lost.
        const bool member = state.scheme.Contains(i);
        const int64_t copies = state.scheme.Size();
        ChargeMessages(/*control=*/false, copies - (member ? 1 : 0),
                       event_index, injector, &ordinal, &breakdown, stats);
        breakdown.io_ops += copies;
      }
      break;
    }
    case AlgorithmKind::kDynamic: {
      if (request.is_read()) {
        if (state.scheme.Contains(i)) {
          breakdown.io_ops += 1;
        } else {
          // Saving-read, as in ServeSlot; the serving F member is live by
          // the scheme ⊆ live invariant.
          const uint32_t f_size = static_cast<uint32_t>(state.t - 1);
          state.next_f = (state.next_f + 1) % f_size;
          state.scheme.Insert(i);
          ChargeMessages(/*control=*/true, 1, event_index, injector, &ordinal,
                         &breakdown, stats);
          ChargeMessages(/*control=*/false, 1, event_index, injector,
                         &ordinal, &breakdown, stats);
          breakdown.io_ops += 2;
        }
      } else {
        // The rule's execution set intersected with the live world: the
        // floating processor p is not part of the scheme between writes, so
        // it can be dead without a preceding scrub — drop it here.
        const ProcessorSet x =
            DynamicAllocation::WriteSet(state.f, state.p, i).Intersect(live);
        const int64_t control = state.scheme.Minus(x).WithErased(i).Size();
        ChargeMessages(/*control=*/true, control, event_index, injector,
                       &ordinal, &breakdown, stats);
        ChargeMessages(/*control=*/false,
                       static_cast<int64_t>(x.WithErased(i).Size()),
                       event_index, injector, &ordinal, &breakdown, stats);
        breakdown.io_ops += x.Size();
        state.scheme = x;
        // Exit repair: the write itself may have shrunk the scheme below t
        // (dead floating processor). Re-replicate before the event ends so
        // the invariant holds at every event boundary.
        if (static_cast<int32_t>(state.scheme.Size()) < state.t)
            [[unlikely]] {
          RepairScheme(&state, slot, live, event_index, injector, &ordinal,
                       &breakdown, stats);
        }
      }
      break;
    }
    default:
      OBJALLOC_CHECK(false)
          << "fault injection supports only inlined algorithm kinds (object "
          << state.id << ")";
  }
  if (check_invariant) {
    const util::Status avail =
        model::CheckSchemeAvailable(state.scheme, live, state.t);
    OBJALLOC_CHECK(avail.ok())
        << "object " << state.id << ": " << avail.ToString();
  }
  const double cost = breakdown.Cost(cost_model_);
  state.requests += 1;
  state.breakdown += breakdown;
  total_requests_ += 1;
  total_breakdown_ += breakdown;
  if (delta != nullptr) *delta += breakdown;
  return cost;
}

void ObjectShard::NoteCrash(ProcessorId p) {
  // Advisory registry only: membership is tested against the scheme as last
  // synchronized (possibly lagging the crash log), and the scheme is left
  // untouched — eviction belongs to the serve timeline. RepairAllDegraded
  // re-checks after applying pending records, so an over-mark heals to a
  // no-op repair.
  for (uint32_t slot = 0; slot < static_cast<uint32_t>(slots_.size());
       ++slot) {
    if (slots_[slot].scheme.Contains(p)) MarkDegraded(slot);
  }
}

void ObjectShard::FlushCrashLog(const CrashLog& crash_log) {
  for (SlotState& state : slots_) {
    SyncSlotWithCrashes(&state, crash_log,
                        std::numeric_limits<size_t>::max());
    state.crash_log_pos = 0;
  }
  for (const uint32_t slot : degraded_list_) degraded_.Erase(slot);
  degraded_list_.clear();
}

int64_t ObjectShard::RepairAllDegraded(ProcessorSet live, size_t event_index,
                                       const CrashLog& crash_log,
                                       const FaultInjector& injector,
                                       FaultStats* stats,
                                       bool check_invariant) {
  if (degraded_list_.empty()) return 0;
  // Lowest slots first; dedupe re-marks that accumulated after lazy repairs.
  std::sort(degraded_list_.begin(), degraded_list_.end());
  degraded_list_.erase(
      std::unique(degraded_list_.begin(), degraded_list_.end()),
      degraded_list_.end());
  std::vector<uint32_t> remaining;
  const int64_t before = stats->replicas_added;
  for (const uint32_t slot : degraded_list_) {
    if (!degraded_.Contains(slot)) continue;  // already repaired lazily
    SlotState& state = slots_[slot];
    if (static_cast<int32_t>(live.Size()) < state.t) {
      remaining.push_back(slot);  // cannot reach t now; stays degraded
      continue;
    }
    // Apply pending crash records first: the mark was taken against a
    // possibly-lagging scheme, and repairing before eviction could top up
    // to t while a dead member lingers.
    SyncSlotWithCrashes(&state, crash_log, event_index);
    model::CostBreakdown breakdown;
    // Ordinal space partitioned by slot: repairs of distinct objects at the
    // same fault-time index draw independent loss samples.
    uint64_t ordinal = static_cast<uint64_t>(slot) * 128;
    RepairScheme(&state, slot, live, event_index, injector, &ordinal,
                 &breakdown, stats);
    state.breakdown += breakdown;
    total_breakdown_ += breakdown;
    if (check_invariant) {
      const util::Status avail =
          model::CheckSchemeAvailable(state.scheme, live, state.t);
      OBJALLOC_CHECK(avail.ok())
          << "object " << state.id << ": " << avail.ToString();
    }
  }
  degraded_list_ = std::move(remaining);
  return stats->replicas_added - before;
}

util::StatusOr<double> ObjectShard::Serve(ObjectId id,
                                          const Request& request) {
  const uint32_t slot = SlotOf(id);
  if (slot == kInvalidSlot) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  if (request.processor < 0 || request.processor >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  return ServeSlot(slot, request, nullptr);
}

util::StatusOr<ObjectStats> ObjectShard::StatsFor(ObjectId id) const {
  const uint32_t slot = SlotOf(id);
  if (slot == kInvalidSlot) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  const SlotState& state = slots_[slot];
  ObjectStats stats;
  stats.requests = state.requests;
  stats.breakdown = state.breakdown;
  stats.scheme = state.scheme;
  return stats;
}

std::vector<ObjectId> ObjectShard::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(slots_.size());
  for (const SlotState& state : slots_) ids.push_back(state.id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ObjectShard::AppendSnapshot(std::string* out) const {
  using util::AppendScalar;
  AppendScalar(static_cast<uint64_t>(slots_.size()), out);
  for (const SlotState& state : slots_) {
    AppendScalar(state.id, out);
    AppendScalar(static_cast<uint8_t>(state.kind), out);
    AppendScalar(state.t, out);
    AppendScalar(state.scheme.mask(), out);
    AppendScalar(state.f.mask(), out);
    AppendScalar(state.p, out);
    AppendScalar(state.next_f, out);
    AppendScalar(static_cast<uint64_t>(state.crash_log_pos), out);
    AppendScalar(state.requests, out);
    AppendScalar(state.breakdown.control_messages, out);
    AppendScalar(state.breakdown.data_messages, out);
    AppendScalar(state.breakdown.io_ops, out);
  }
  AppendScalar(total_requests_, out);
  AppendScalar(total_breakdown_.control_messages, out);
  AppendScalar(total_breakdown_.data_messages, out);
  AppendScalar(total_breakdown_.io_ops, out);
  // Degraded registry, filtered to the slots still actually registered
  // (the list may hold entries already healed lazily). Order is irrelevant:
  // RepairAllDegraded sorts before every sweep.
  uint32_t degraded = 0;
  for (const uint32_t slot : degraded_list_) {
    if (degraded_.Contains(slot)) ++degraded;
  }
  AppendScalar(degraded, out);
  for (const uint32_t slot : degraded_list_) {
    if (degraded_.Contains(slot)) AppendScalar(slot, out);
  }
}

util::Status ObjectShard::RestoreSnapshot(std::string_view payload) {
  if (!slots_.empty()) {
    return util::Status::Internal(
        "RestoreSnapshot requires a freshly constructed shard");
  }
  util::PayloadReader reader(payload);
  uint64_t count = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&count));
  constexpr size_t kSlotBytes = 8 + 1 + 4 + 8 + 8 + 4 + 4 + 8 + 8 + 3 * 8;
  if (reader.remaining() < count * kSlotBytes) {
    return util::Status::Internal("shard snapshot: slot table truncated");
  }
  const ProcessorSet world = ProcessorSet::FirstN(num_processors_);
  Reserve(static_cast<size_t>(count));
  for (uint64_t s = 0; s < count; ++s) {
    SlotState state;
    uint8_t kind = 0;
    uint64_t scheme_mask = 0, f_mask = 0, crash_log_pos = 0;
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.id));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&kind));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.t));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&scheme_mask));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&f_mask));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.p));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.next_f));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&crash_log_pos));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.requests));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.breakdown.control_messages));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.breakdown.data_messages));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&state.breakdown.io_ops));
    state.kind = static_cast<AlgorithmKind>(kind);
    if (state.kind != AlgorithmKind::kStatic &&
        state.kind != AlgorithmKind::kDynamic) {
      return util::Status::Internal(
          "shard snapshot: non-inlined algorithm kind " +
          std::to_string(kind));
    }
    state.scheme = ProcessorSet(scheme_mask);
    state.f = ProcessorSet(f_mask);
    state.crash_log_pos = static_cast<size_t>(crash_log_pos);
    if (state.t < 1 || state.t > num_processors_) {
      return util::Status::Internal("shard snapshot: bad threshold " +
                                    std::to_string(state.t));
    }
    if (!state.scheme.IsSubsetOf(world) || !state.f.IsSubsetOf(world)) {
      return util::Status::Internal(
          "shard snapshot: scheme names out-of-range processors");
    }
    if (state.p < -1 || state.p >= num_processors_) {
      return util::Status::Internal(
          "shard snapshot: floating processor out of range");
    }
    if (directory_.Contains(state.id)) {
      return util::Status::Internal("shard snapshot: duplicate object id " +
                                    std::to_string(state.id));
    }
    InitSlotCosts(&state);
    directory_.Insert(state.id, static_cast<uint32_t>(slots_.size()));
    slots_.push_back(std::move(state));
  }
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&total_requests_));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&total_breakdown_.control_messages));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&total_breakdown_.data_messages));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&total_breakdown_.io_ops));
  uint32_t degraded = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&degraded));
  if (reader.remaining() != static_cast<size_t>(degraded) * 4) {
    return util::Status::Internal("shard snapshot: degraded registry size");
  }
  for (uint32_t d = 0; d < degraded; ++d) {
    uint32_t slot = 0;
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&slot));
    if (slot >= slots_.size()) {
      return util::Status::Internal(
          "shard snapshot: degraded slot out of range");
    }
    MarkDegraded(slot);
  }
  return util::Status::Ok();
}

}  // namespace objalloc::core
