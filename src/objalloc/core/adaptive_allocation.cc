#include "objalloc/core/adaptive_allocation.h"

#include <algorithm>

#include "objalloc/util/logging.h"

namespace objalloc::core {

AdaptiveAllocation::AdaptiveAllocation(const model::CostModel& model,
                                       AdaptiveOptions options)
    : model_(model), options_(options) {
  OBJALLOC_CHECK(model.Validate().ok()) << model.ToString();
  OBJALLOC_CHECK(options.Validate().ok());
}

void AdaptiveAllocation::Reset(int num_processors,
                               ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(!initial_scheme.Empty());
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)));
  num_processors_ = num_processors;
  t_ = initial_scheme.Size();
  scheme_ = initial_scheme;
  window_.clear();
  read_counts_.assign(static_cast<size_t>(num_processors), 0.0);
  write_count_ = 0;
}

void AdaptiveAllocation::Observe(const Request& request) {
  window_.push_back(request);
  if (request.is_read()) {
    read_counts_[static_cast<size_t>(request.processor)] += 1;
  } else {
    write_count_ += 1;
  }
  if (static_cast<int>(window_.size()) > options_.window_size) {
    const Request& old = window_.front();
    if (old.is_read()) {
      read_counts_[static_cast<size_t>(old.processor)] -= 1;
    } else {
      write_count_ -= 1;
    }
    window_.pop_front();
  }
}

Decision AdaptiveAllocation::Step(const Request& request) {
  OBJALLOC_CHECK_GT(num_processors_, 0) << "Step before Reset";
  Observe(request);
  const ProcessorId i = request.processor;

  if (request.is_read()) {
    if (scheme_.Contains(i)) {
      return Decision{ProcessorSet::Singleton(i), false};
    }
    // The source must be a current scheme member (legality).
    const ProcessorId source = scheme_.First();
    // Expansion test: with R_i windowed reads by i and W windowed writes,
    // i's expected reads per write save (cc + cd) each if i holds a copy;
    // holding one costs cio now and one invalidation (cc) at the next write.
    double reads_per_write = WindowReadsBy(i) / std::max(write_count_, 1.0);
    bool expand = reads_per_write * (model_.control + model_.data) >
                  model_.io + model_.control;
    if (write_count_ == 0) expand = true;  // no writes observed: copies are free
    if (expand) scheme_.Insert(i);
    return Decision{ProcessorSet::Singleton(source), expand};
  }

  // Write: keep members whose windowed read rate pays for the (cd + cio)
  // refresh; always include the writer; pad with the heaviest readers to t.
  ProcessorSet keep = ProcessorSet::Singleton(i);
  for (ProcessorId member : scheme_) {
    if (member == i) continue;
    double reads_per_write =
        WindowReadsBy(member) / std::max(write_count_, 1.0);
    if (reads_per_write * (model_.control + model_.data) >
        model_.data + model_.io) {
      keep.Insert(member);
    }
  }
  if (keep.Size() < t_) {
    std::vector<ProcessorId> candidates;
    for (ProcessorId p = 0; p < num_processors_; ++p) {
      if (!keep.Contains(p)) candidates.push_back(p);
    }
    std::stable_sort(candidates.begin(), candidates.end(),
                     [&](ProcessorId a, ProcessorId b) {
                       return WindowReadsBy(a) > WindowReadsBy(b);
                     });
    for (ProcessorId p : candidates) {
      if (keep.Size() >= t_) break;
      keep.Insert(p);
    }
  }
  scheme_ = keep;
  return Decision{keep, false};
}

}  // namespace objalloc::core
