// QuorumAllocation — static quorum-consensus voting (Gifford [14] /
// Thomas [25]) expressed as a DOM algorithm in the paper's model, as the
// §3.1 footnote describes: "in quorum consensus, a read request retrieves a
// number of copies that have a read-quorum (and then discards all of them,
// except the one with the most recent time-stamp)".
//
//   * a read's execution set is any r processors (it inputs the object at
//     each and keeps the newest) — legality is structural: r + w > n means
//     every r-set intersects every w-set, in particular the latest write's;
//   * a write's execution set is the writer plus w-1 further processors,
//     rotated round-robin to spread storage.
//
// This is the classical static alternative to read-one-write-all: reads pay
// r-fold, writes only w-fold (instead of n-fold / scheme-wide). The benches
// use it as a second baseline against SA and DA.

#ifndef OBJALLOC_CORE_QUORUM_ALLOCATION_H_
#define OBJALLOC_CORE_QUORUM_ALLOCATION_H_

#include "objalloc/core/dom_algorithm.h"

namespace objalloc::core {

struct QuorumAllocationOptions {
  int read_quorum = 0;   // r; 0 = majority of n
  int write_quorum = 0;  // w; 0 = majority of n

  // Checks 1 <= r, t <= w <= n and r + w > n once n and t are known.
  util::Status ValidateFor(int num_processors, int t) const;
};

class QuorumAllocation final : public DomAlgorithm {
 public:
  explicit QuorumAllocation(QuorumAllocationOptions options);

  std::string name() const override { return "QuorumVoting"; }
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<QuorumAllocation>(*this);
  }

  int read_quorum() const { return r_; }
  int write_quorum() const { return w_; }

 private:
  // The next `count`-processor window starting at the rotation cursor,
  // always including `must_include`.
  ProcessorSet RotatingQuorum(int count, ProcessorId must_include);

  QuorumAllocationOptions options_;
  int num_processors_ = 0;
  int r_ = 0;
  int w_ = 0;
  int cursor_ = 0;
  ProcessorSet scheme_;  // the latest write quorum
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_QUORUM_ALLOCATION_H_
