#include "objalloc/core/fault_injector.h"

#include "objalloc/util/logging.h"

namespace objalloc::core {

util::Status FaultInjectorOptions::Validate(int num_processors) const {
  if (num_processors < 1 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  for (double rate : {crash_rate, recover_rate, control_loss_rate,
                      data_loss_rate}) {
    if (rate < 0 || rate > 1 || rate != rate) {
      return util::Status::InvalidArgument(
          "fault rates must lie in [0, 1]");
    }
  }
  if (max_retries < 0 || max_retries > 62) {
    return util::Status::InvalidArgument("max_retries out of range [0, 62]");
  }
  if (min_live < 0 || min_live > num_processors) {
    return util::Status::InvalidArgument(
        "min_live out of range [0, num_processors]");
  }
  return util::Status::Ok();
}

FaultStats& FaultStats::operator+=(const FaultStats& other) {
  crashes += other.crashes;
  recoveries += other.recoveries;
  repairs += other.repairs;
  replicas_added += other.replicas_added;
  lost_control += other.lost_control;
  lost_data += other.lost_data;
  backoff_units += other.backoff_units;
  unavailable_requests += other.unavailable_requests;
  rejected_batches += other.rejected_batches;
  repair_latency.insert(repair_latency.end(), other.repair_latency.begin(),
                        other.repair_latency.end());
  return *this;
}

util::Status FaultInjector::ValidateSchedule(const FaultSchedule& schedule,
                                             int num_processors) {
  size_t last = 0;
  for (size_t i = 0; i < schedule.size(); ++i) {
    const FaultEvent& event = schedule[i];
    if (event.before_event < last) {
      return util::Status::InvalidArgument(
          "fault schedule not sorted by before_event at entry " +
          std::to_string(i));
    }
    if (event.processor < 0 || event.processor >= num_processors) {
      return util::Status::InvalidArgument(
          "fault schedule names processor " +
          std::to_string(event.processor) + " out of range at entry " +
          std::to_string(i));
    }
    last = event.before_event;
  }
  return util::Status::Ok();
}

FaultInjector::FaultInjector(int num_processors,
                             const FaultInjectorOptions& options,
                             FaultSchedule schedule)
    : num_processors_(num_processors),
      options_(options),
      schedule_(std::move(schedule)) {
  util::Status status = options.Validate(num_processors);
  OBJALLOC_CHECK(status.ok()) << status.ToString();
  status = ValidateSchedule(schedule_, num_processors);
  OBJALLOC_CHECK(status.ok()) << status.ToString();
}

void FaultInjector::FastForward(size_t cursor) {
  cursor_ = cursor;
  next_scheduled_ = 0;
  // CollectFaults at index i fires schedule entries with before_event <= i,
  // so entries with before_event < cursor were consumed by indices 0..cursor-1.
  while (next_scheduled_ < schedule_.size() &&
         schedule_[next_scheduled_].before_event < cursor) {
    ++next_scheduled_;
  }
}

uint64_t FaultInjector::Hash(uint64_t stream, uint64_t index,
                             uint64_t ordinal) const {
  // Three chained splitmix64 finalizer steps over (seed, stream, index,
  // ordinal): fixed, platform-independent, and free of sequential state.
  auto mix = [](uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  };
  uint64_t h = mix(options_.seed ^ (stream * 0xd1342543de82ef95ULL));
  h = mix(h ^ index);
  return mix(h ^ ordinal);
}

void FaultInjector::CollectFaults(util::ProcessorSet live,
                                  std::vector<FaultEvent>* out) {
  const size_t index = cursor_++;
  // Scripted events due at (or skipped past — a rejected batch consumes its
  // window) this index, in schedule order.
  while (next_scheduled_ < schedule_.size() &&
         schedule_[next_scheduled_].before_event <= index) {
    out->push_back(schedule_[next_scheduled_++]);
  }
  // At most one random crash: only while strictly above the min_live floor.
  if (options_.crash_rate > 0 && live.Size() > options_.min_live &&
      UnitDouble(Hash(kCrashStream, index, 0)) < options_.crash_rate) {
    const int k = static_cast<int>(Hash(kCrashVictimStream, index, 0) %
                                   static_cast<uint64_t>(live.Size()));
    out->push_back(FaultEvent::Crash(index, live.Nth(k)));
  }
  // At most one random recover, drawn from the currently-crashed set.
  const util::ProcessorSet crashed =
      util::ProcessorSet::FirstN(num_processors_).Minus(live);
  if (options_.recover_rate > 0 && !crashed.Empty() &&
      UnitDouble(Hash(kRecoverStream, index, 0)) < options_.recover_rate) {
    const int k = static_cast<int>(Hash(kRecoverVictimStream, index, 0) %
                                   static_cast<uint64_t>(crashed.Size()));
    out->push_back(FaultEvent::Recover(index, crashed.Nth(k)));
  }
}

int FaultInjector::Retries(double rate, uint64_t stream, size_t index,
                           uint32_t ordinal) const {
  if (rate <= 0) return 0;
  int lost = 0;
  while (lost < options_.max_retries &&
         UnitDouble(Hash(stream, index,
                         (static_cast<uint64_t>(ordinal) << 8) |
                             static_cast<uint64_t>(lost))) < rate) {
    ++lost;
  }
  return lost;
}

}  // namespace objalloc::core
