// ObjectShard — the per-object state machine of the multi-object serving
// path, extracted so it can be replicated: a shard owns a disjoint subset of
// the objects (hash-partitioned by the ObjectService) and executes the
// requests routed to it strictly in stream order. Because objects never span
// shards, per-object request order — the only order the DOM algorithms are
// sensitive to — is preserved no matter how many shards exist, which is the
// heart of the service layer's determinism argument (DESIGN.md §7).
//
// The shard is the devirtualized serving engine (DESIGN.md §8), laid out for
// millions of objects under an explicit footprint budget (DESIGN.md §12):
//
//   * Object state lives in fixed-size slab pages of 64-byte SlotRecords
//     indexed by *slot*. Pages are allocated one at a time and never moved,
//     so growing to the N-th object allocates O(page) — no vector-doubling
//     copy of the whole shard, and a slot's address is stable for the
//     shard's lifetime. Freed slots go on a free list for reuse (no
//     removal API exists yet; the slab is built for one).
//   * A SlotRecord bit-packs the full inline SA/DA machine: identity, the
//     scheme and DA core-set masks, and a meta word holding the dispatch
//     tag, availability threshold, DA floating processor and round-robin
//     index, and the crash-log cursor, beside the per-object request count
//     and cost breakdown — exactly 64 bytes, one cache line per object.
//   * The per-request cost scalars previously stored per object are a pure
//     function of (kind, t) and the shard's cost model, so they live in one
//     per-shard table of ≤ 3×65 entries, folded at construction in the
//     *same association order* as before — (ctrl*cc + cd-term) + cio-term —
//     so the factoring-out cannot perturb a single result bit.
//   * The common algorithms (SA, DA) dispatch by a switch on the packed
//     tag — no heap indirection, no virtual Step() call. The
//     std::unique_ptr<DomAlgorithm> virtual path remains only as the
//     fallback for the non-inlined kinds (kAdaptive) and lives on a side
//     table keyed by slot, so the dense common case pays it nothing.
//   * The id → slot directory is optional: the ObjectService routes through
//     its own global id → (shard, slot) table, so its shards skip the
//     per-shard directory entirely (external-directory mode) instead of
//     indexing every object twice. ObjectManager keeps the internal
//     directory.
//
// Aggregate accounting (TotalBreakdown / TotalRequests) is maintained
// incrementally on every served request, so the totals are O(1) reads
// rather than an O(objects) re-summation per call.
//
// Fault tolerance (DESIGN.md §9): the shard additionally owns the per-object
// half of the failure model. Crashes scrub schemes *lazily*: the service
// appends every applied crash to an append-only CrashLog, each slot keeps
// its position in that log, and ServeSlotFaulty starts by dropping members
// crashed at fault-time indices in the window since the object's previous
// event — exactly that window, which keeps scheme state a pure function of
// per-object event order even when a member joins and crashes inside one
// batch (an eager scrub at crash time would run against pre-batch schemes
// and miss, or mis-order, such members). A crashed copy is stale on
// recovery — erasure is never undone by a later recover, matching the
// simulator's recover-with-invalidated-copy semantics. NoteCrash registers
// crash-time scheme members in a degraded-slot directory for eager repair;
// ServeSlotFaulty itself is the liveness-aware twin of ServeSlot —
// execution sets intersected with the live set, t-availability repaired by
// deterministic re-replication charged as saving-reads, message loss
// retried with exponential-backoff accounting — that is bit-identical to
// ServeSlot when no fault fires.

#ifndef OBJALLOC_CORE_OBJECT_SHARD_H_
#define OBJALLOC_CORE_OBJECT_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/core/fault_injector.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/flat_directory.h"
#include "objalloc/util/record_io.h"
#include "objalloc/util/status.h"

namespace objalloc::core {

using ObjectId = int64_t;

struct ObjectConfig {
  ProcessorSet initial_scheme;               // also fixes t
  AlgorithmKind algorithm = AlgorithmKind::kDynamic;
};

// Per-object and aggregate accounting.
struct ObjectStats {
  int64_t requests = 0;
  model::CostBreakdown breakdown;
  ProcessorSet scheme;  // current allocation scheme
};

class ObjectShard {
 public:
  // Sentinel returned by SlotOf for unregistered ids.
  static constexpr uint32_t kInvalidSlot =
      util::FlatDirectory<uint32_t>::kNotFound;

  // With `external_directory` the shard keeps no id → slot map of its own:
  // the owner (ObjectService) resolves ids through its global route table
  // and addresses the shard by slot only. The id-keyed calls (SlotOf,
  // HasObject, Serve(id), StatsFor(id)) must not be used in that mode.
  ObjectShard(int num_processors, const model::CostModel& cost_model,
              bool external_directory = false);

  // Movable so ObjectService can hold shards by value.
  ObjectShard(ObjectShard&&) = default;
  ObjectShard& operator=(ObjectShard&&) = default;

  // Registers an object and returns its dense slot. Fails on duplicate ids
  // (internal-directory mode only — an external directory owns that check),
  // empty or out-of-range schemes, and algorithm/threshold mismatches (DA
  // needs t >= 2).
  util::StatusOr<uint32_t> AddObject(ObjectId id, const ObjectConfig& config);

  // The validation half of AddObject, minus the duplicate-id check (that
  // needs a directory). Static so the service layer can pre-validate a
  // registration *before* write-ahead logging it: a logged AddObject record
  // must never fail on replay.
  static util::Status ValidateConfig(const ObjectConfig& config,
                                     int num_processors);

  // Sizes every internal table ahead of a bulk registration: the id → slot
  // directory rehashes once and the slab pages for `expected_objects` slots
  // are allocated up front, so the registration burst itself allocates
  // nothing.
  void Reserve(size_t expected_objects);

  bool HasObject(ObjectId id) const { return directory_.Contains(id); }
  size_t object_count() const { return slot_count_ - free_slots_.size(); }
  int num_processors() const { return num_processors_; }

  // Heap bytes held by the shard: slab pages, directories, degraded
  // registry, and fallback side table. The per-object cost of the engine is
  // MemoryUsageBytes() / object_count() — bench/footprint_scaling budgets
  // it.
  size_t MemoryUsageBytes() const;

  // Dense slot of `id`, or kInvalidSlot. One flat-directory probe —
  // resolve once, then serve through the slot without hashing.
  uint32_t SlotOf(ObjectId id) const { return directory_.Find(id); }

  // Id stored at `slot`; requires slot < slot_span(). Handle validation
  // cross-checks this against the handle's claimed id.
  ObjectId IdAt(uint32_t slot) const { return Slot(slot).id; }

  // Availability threshold / algorithm of the object at `slot` (degraded
  // admission checks |live| >= t per event without re-hashing the id).
  int32_t ThresholdAt(uint32_t slot) const { return Slot(slot).t(); }
  AlgorithmKind KindAt(uint32_t slot) const { return Slot(slot).kind(); }

  // One past the highest slot ever allocated (free-list holes included);
  // the iteration bound for slot-addressed walks like the snapshot writer.
  uint32_t slot_span() const { return slot_count_; }

  // True when any registered object runs through the virtual fallback
  // (kAdaptive): those algorithms have no defined failure semantics, so the
  // fault layer refuses to engage while one exists.
  bool HasFallbackObjects() const { return !fallbacks_.empty(); }

  // Serves one request against one object, returning the request's cost.
  // Requests against the same object must arrive in stream order.
  // Internal-directory mode only.
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Validation-free hot path: the caller has already resolved the slot
  // (SlotOf / ObjectHandle) and admitted the request (processor in range).
  // The request's breakdown is additionally accumulated into `*delta` when
  // non-null so a batch can account its own traffic without re-walking the
  // shard.
  double ServeSlot(uint32_t slot, const Request& request,
                   model::CostBreakdown* delta);

  // Liveness-aware twin of ServeSlot for the fault-injection path. The
  // caller guarantees the issuer is live and |live| >= t for this object
  // (degraded admission), and that `crash_log` holds every applied crash at
  // a nondecreasing fault-time index. First scrubs members crashed since
  // the object's previous event (records in (last event, event_index]),
  // then repairs the scheme to t live replicas before the request runs (and
  // again after a write whose execution set lost members), charges
  // deterministic message-loss retries, and — when `check_invariant` —
  // asserts |scheme ∩ live| >= t afterwards. With an all-live set and no
  // loss draws this computes bit-identical costs and state transitions to
  // ServeSlot (asserted by tests/fault_injection_test). Only inlinable
  // kinds (SA, DA) are supported.
  double ServeSlotFaulty(uint32_t slot, const Request& request,
                         size_t event_index, ProcessorSet live,
                         const CrashLog& crash_log,
                         const FaultInjector& injector,
                         model::CostBreakdown* delta, FaultStats* stats,
                         bool check_invariant);

  // Registers every object whose scheme holds crashed processor `p` in the
  // degraded directory for eager repair. The scheme itself is *not*
  // mutated here: eviction happens lazily from the crash log on the
  // object's serve timeline (see ServeSlotFaulty), the only order in which
  // in-batch joins and crashes compose correctly.
  void NoteCrash(ProcessorId p);

  // Eagerly repairs every degraded object that can reach t live replicas
  // (lowest slots first — deterministic): pending crash-log records are
  // applied first, then the scheme is re-replicated up to t, charged into
  // the lifetime accounting. Objects whose t exceeds |live| stay degraded.
  // Returns the number of replicas created.
  int64_t RepairAllDegraded(ProcessorSet live, size_t event_index,
                            const CrashLog& crash_log,
                            const FaultInjector& injector, FaultStats* stats,
                            bool check_invariant);

  // Applies every remaining crash-log record to every slot and resets the
  // per-slot log positions and the degraded registry. Called when the
  // service arms or disarms fault mode, so schemes reflect the full crash
  // history before the log is discarded.
  void FlushCrashLog(const CrashLog& crash_log);

  // Marks the object at `slot` as born after the first `pos` crash-log
  // records: crashes recorded before registration (its scheme was validated
  // against the then-live set) never apply to it.
  void SetCrashLogStart(uint32_t slot, size_t pos) {
    Slot(slot).set_crash_log_pos(pos);
    MarkDirty(slot);
  }

  // Objects currently registered as degraded (|scheme| < t or broken DA
  // core set after crashes) and not yet repaired.
  size_t degraded_count() const { return degraded_.size(); }

  // Internal-directory mode only; the service resolves via its route table
  // and calls StatsAt.
  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;

  // Per-object accounting of the (valid, occupied) slot.
  ObjectStats StatsAt(uint32_t slot) const;

  // Incrementally maintained aggregates; O(1).
  const model::CostBreakdown& TotalBreakdown() const {
    return total_breakdown_;
  }
  double TotalCost() const { return total_breakdown_.Cost(cost_model_); }
  int64_t TotalRequests() const { return total_requests_; }

  // Object ids in ascending order — the explicit sort that aggregation
  // points use to iterate deterministically over the unordered table.
  std::vector<ObjectId> SortedObjectIds() const;

  // --- Durability (core/checkpoint.h) ---------------------------------
  //
  // The snapshot byte format is unchanged from durability format v1: a u64
  // slot count, one 75-byte record per slot in slot order, lifetime
  // aggregates, then the degraded registry. What changed in v2 is the
  // *framing*: the writer streams the same bytes as header / bounded slot
  // ranges / footer so a checkpoint never materializes the whole shard in
  // memory, and the reader accepts arbitrary re-chunkings of the stream —
  // a v1 full-blob payload is simply one big chunk.

  // Serializes the shard's full state as one contiguous payload (the v1
  // shape); equivalent to Header + Slots(0, slot_span()) + Footer.
  void AppendSnapshot(std::string* out) const;

  // Streaming writer: the slot count, then any partition of
  // [0, slot_span()) into ranges, then the aggregates + degraded registry.
  void AppendSnapshotHeader(std::string* out) const;
  void AppendSnapshotSlots(uint32_t begin, uint32_t end,
                           std::string* out) const;
  void AppendSnapshotFooter(std::string* out) const;

  // Restores a snapshot into a freshly constructed, still-empty shard built
  // with the writer's processor count and cost model, one chunk at a time
  // and in order; `last` marks the final chunk. Chunk boundaries are
  // arbitrary (a partial slot record is carried to the next call), so the
  // reader accepts both the v2 streamed ranges and a v1 full blob. Restored
  // slots re-derive their cost constants from (kind, t) via the same table
  // AddObject reads, so a restored slot is bit-identical to one that lived
  // through the original run. Every field is range-checked; a payload that
  // deserializes but violates an invariant (unknown kind, out-of-range
  // scheme, duplicate id) is rejected as Internal — the caller falls back
  // to an older checkpoint generation. In external-directory mode the id →
  // slot directory is not rebuilt (the owner rebuilds its route table and
  // owns the duplicate check).
  util::Status RestoreSnapshotChunk(std::string_view chunk, bool last);

  // One-shot restore of a full payload: RestoreSnapshotChunk(payload, true).
  util::Status RestoreSnapshot(std::string_view payload);

  // --- Delta checkpoints (DESIGN.md §13) -------------------------------
  //
  // When armed, the shard keeps one dirty bit per slab page, set on every
  // slot mutation. A delta snapshot serializes only the dirty pages, as
  // explicit [begin, end) slot ranges with a presence byte per slot,
  // followed by the standard aggregate footer — its cost is proportional
  // to the pages touched since the previous checkpoint, not to the shard.
  // Restoring applies a delta *on top of* existing state (the base
  // snapshot, or an earlier delta), overwriting exactly the serialized
  // slots and replacing the aggregates and degraded registry.

  // Arms tracking; every existing page starts dirty (the caller is expected
  // to take a full base snapshot and then ClearDirty).
  void EnableDirtyTracking();
  void DisableDirtyTracking();
  bool dirty_tracking() const { return dirty_tracking_; }
  // Clears every dirty bit — call only after the checkpoint that captured
  // them has durably committed.
  void ClearDirty();
  // The dirty pages as maximal merged [begin, end) slot ranges clipped to
  // slot_span(), ascending.
  void CollectDirtyRanges(
      std::vector<std::pair<uint32_t, uint32_t>>* out) const;

  // Streaming delta writer: header (slot span + range count), one call per
  // CollectDirtyRanges entry in order, then AppendSnapshotFooter.
  void AppendDeltaHeader(uint32_t range_count, std::string* out) const;
  void AppendDeltaRange(uint32_t begin, uint32_t end, std::string* out) const;

  // Streaming delta reader; chunk boundaries are arbitrary (partial units
  // carry over), `last` marks the final chunk. BeginDeltaRestore resets the
  // cursor before each delta in a chain.
  void BeginDeltaRestore();
  util::Status RestoreDeltaChunk(std::string_view chunk, bool last);

 private:
  // One dense slot of the serving engine: the full inline SA/DA machine in
  // exactly 64 bytes (one cache line). The dispatch tag, availability
  // threshold, DA floating processor / round-robin index, and crash-log
  // cursor are bit-packed into one meta word:
  //
  //   bits  0..3   algorithm kind            (AlgorithmKind, 3 values)
  //   bits  4..10  t                         (1..64)
  //   bits 11..17  p + 1                     (0 encodes "no floating proc")
  //   bits 18..24  next_f                    (round-robin F index, < t-1)
  //   bits 32..63  crash_log_pos             (applied crash-log prefix)
  //
  // Cost scalars live in the shard-level (kind, t) table, and the virtual
  // fallback for non-inlined kinds on a slot-keyed side table, so neither
  // widens the record.
  struct SlotRecord {
    ObjectId id = -1;          // -1 marks a free-listed slot
    uint64_t scheme_mask = 0;  // current allocation scheme
    uint64_t f_mask = 0;       // DA: core set F
    uint64_t meta = 0;
    int64_t requests = 0;
    model::CostBreakdown breakdown;

    AlgorithmKind kind() const {
      return static_cast<AlgorithmKind>(meta & 0xF);
    }
    int32_t t() const { return static_cast<int32_t>((meta >> 4) & 0x7F); }
    int32_t p() const {
      return static_cast<int32_t>((meta >> 11) & 0x7F) - 1;
    }
    uint32_t next_f() const {
      return static_cast<uint32_t>((meta >> 18) & 0x7F);
    }
    size_t crash_log_pos() const { return static_cast<size_t>(meta >> 32); }

    void set_p(int32_t p) {
      meta = (meta & ~(uint64_t{0x7F} << 11)) |
             (static_cast<uint64_t>(p + 1) << 11);
    }
    void set_next_f(uint32_t next_f) {
      meta = (meta & ~(uint64_t{0x7F} << 18)) |
             (static_cast<uint64_t>(next_f) << 18);
    }
    void set_crash_log_pos(size_t pos) {
      meta = (meta & 0xFFFFFFFFULL) | (static_cast<uint64_t>(pos) << 32);
    }
    static uint64_t PackMeta(AlgorithmKind kind, int32_t t, int32_t p,
                             uint32_t next_f, size_t crash_log_pos) {
      return (static_cast<uint64_t>(kind) & 0xF) |
             ((static_cast<uint64_t>(t) & 0x7F) << 4) |
             ((static_cast<uint64_t>(p + 1) & 0x7F) << 11) |
             ((static_cast<uint64_t>(next_f) & 0x7F) << 18) |
             (static_cast<uint64_t>(crash_log_pos) << 32);
    }
  };
  static_assert(sizeof(SlotRecord) == 64,
                "SlotRecord is budgeted at one cache line per object");

  // Per-(kind, t) cost scalars, shared by every object of that shape.
  struct CostEntry {
    double read_local = 0;   // read by a scheme member: one input
    double read_remote = 0;  // SA remote plain read / DA saving-read
    // SA: full cost of a write by a member / non-member of Q.
    // DA: the (t-1)*cd data term / t*cio io term of a write (the varying
    //     control term is added per event in canonical order).
    double write_a = 0;
    double write_b = 0;
  };

  // Slab geometry: 2048 slots × 64 B = 128 KiB pages.
  static constexpr uint32_t kPageShift = 11;
  static constexpr uint32_t kPageSlots = 1u << kPageShift;
  static constexpr uint32_t kPageMask = kPageSlots - 1;

  SlotRecord& Slot(uint32_t slot) {
    return pages_[slot >> kPageShift][slot & kPageMask];
  }
  const SlotRecord& Slot(uint32_t slot) const {
    return pages_[slot >> kPageShift][slot & kPageMask];
  }

  const CostEntry& CostsFor(AlgorithmKind kind, int32_t t) const {
    return cost_table_[static_cast<size_t>(kind) * (util::kMaxProcessors + 1) +
                       static_cast<size_t>(t)];
  }

  // Pops a free-listed slot or appends one, growing the slab by whole
  // pages; never moves existing records.
  uint32_t AllocateSlot();

  // The virtual-fallback algorithm of a non-inlined slot.
  DomAlgorithm* FallbackAt(uint32_t slot) const {
    return fallbacks_[fallback_index_.Find(slot)].get();
  }

  // Registers `slot` as degraded (idempotent).
  void MarkDegraded(uint32_t slot);

  // Erases from the record's scheme every crash-log member recorded at a
  // fault-time index <= `up_to_index` that the slot has not yet applied,
  // and advances the slot's log position past them.
  void SyncSlotWithCrashes(SlotRecord* record, const CrashLog& crash_log,
                           size_t up_to_index);

  // Re-replicates the record's scheme up to t from the lowest-id live
  // processors, each copy charged as a saving-read ({1 control, 1 data,
  // 2 io}) with loss retries; re-derives DA's (F, p) split from the t
  // lowest members of the repaired scheme; clears the degraded mark and
  // records a repair-latency sample (virtual units) in `*stats`.
  void RepairScheme(SlotRecord* record, uint32_t slot, ProcessorSet live,
                    size_t event_index, const FaultInjector& injector,
                    uint64_t* ordinal, model::CostBreakdown* breakdown,
                    FaultStats* stats);

  // Adds `count` transmissions of one message type to `*breakdown` plus the
  // deterministic loss retries of each (one duplicate message per lost
  // attempt, exponential backoff accounted in stats).
  void ChargeMessages(bool control, int64_t count, size_t event_index,
                      const FaultInjector& injector, uint64_t* ordinal,
                      model::CostBreakdown* breakdown,
                      FaultStats* stats) const;

  // Incremental-restore cursor for RestoreSnapshotChunk.
  struct RestoreProgress {
    bool header_done = false;
    bool done = false;
    uint64_t expected = 0;
    uint64_t restored = 0;
    std::string carry;  // partial record spanning a chunk boundary
  };

  // Incremental-restore cursor for RestoreDeltaChunk.
  struct DeltaProgress {
    bool header_done = false;
    bool done = false;
    uint32_t ranges_total = 0;
    uint32_t ranges_done = 0;
    bool in_range = false;
    uint32_t cursor = 0;     // next slot of the open range
    uint32_t range_end = 0;  // one past the open range
    std::string carry;       // partial unit spanning a chunk boundary
  };

  // Parses and installs one 75-byte snapshot slot record.
  util::Status RestoreSlotRecord(util::PayloadReader* reader);
  // Parses the aggregates + degraded registry that close a snapshot.
  util::Status RestoreSnapshotFooter(util::PayloadReader* reader);
  // Parses one presence-prefixed delta slot unit into absolute `slot`.
  util::Status RestoreDeltaSlot(uint32_t slot, util::PayloadReader* reader);

  // Sets the dirty bit of `slot`'s page; no-op unless tracking is armed.
  void MarkDirty(uint32_t slot) {
    if (!dirty_tracking_) return;
    const uint32_t page = slot >> kPageShift;
    const size_t word = page >> 6;
    if (word >= dirty_words_.size()) [[unlikely]] {
      dirty_words_.resize(word + 1, 0);
    }
    dirty_words_[word] |= uint64_t{1} << (page & 63);
  }
  void MarkAllDirty();

  int num_processors_;
  model::CostModel cost_model_;
  bool owns_directory_;

  // Slab storage: stable fixed-size pages of SlotRecords plus a free list.
  std::vector<std::unique_ptr<SlotRecord[]>> pages_;
  uint32_t slot_count_ = 0;  // slots ever allocated (span of the slab)
  std::vector<uint32_t> free_slots_;

  // (kind, t) → precomputed cost scalars; filled at construction.
  std::vector<CostEntry> cost_table_;

  util::FlatDirectory<uint32_t> directory_;  // id → slot (internal mode)

  // Non-inlined kinds (kAdaptive): slot → index into the fallback vector.
  util::FlatDirectory<uint32_t> fallback_index_;
  std::vector<std::unique_ptr<DomAlgorithm>> fallbacks_;

  model::CostBreakdown total_breakdown_;
  int64_t total_requests_ = 0;
  // Degraded-object registry: slot → 1 while |scheme| < t (or DA's core
  // set is broken) after a crash. The directory dedupes (erased on repair —
  // the FlatDirectory tombstone path); the list gives deterministic
  // iteration order and is compacted by RepairAllDegraded.
  util::FlatDirectory<uint32_t> degraded_;
  std::vector<uint32_t> degraded_list_;

  RestoreProgress restore_;

  // Delta-checkpoint machinery: one dirty bit per slab page while armed.
  bool dirty_tracking_ = false;
  std::vector<uint64_t> dirty_words_;
  DeltaProgress delta_restore_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_SHARD_H_
