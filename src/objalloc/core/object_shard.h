// ObjectShard — the per-object state machine of the multi-object serving
// path, extracted so it can be replicated: a shard owns a disjoint subset of
// the objects (hash-partitioned by the ObjectService) and executes the
// requests routed to it strictly in stream order. Because objects never span
// shards, per-object request order — the only order the DOM algorithms are
// sensitive to — is preserved no matter how many shards exist, which is the
// heart of the service layer's determinism argument (DESIGN.md §7).
//
// The shard is the devirtualized serving engine (DESIGN.md §8):
//
//   * Object state lives in a dense std::vector indexed by *slot*; the
//     unordered_map survives only as the id → slot directory. Slots are
//     stable (objects are never removed), so a slot resolved once — an
//     ObjectHandle at the service layer — serves forever without hashing.
//   * The common algorithms (SA, DA) are stored as a tagged union of inline
//     state inside the slot and dispatched by a switch on AlgorithmKind —
//     no heap indirection, no virtual Step() call, and the per-request cost
//     is read from per-object constants precomputed from the CostModel at
//     registration. The std::unique_ptr<DomAlgorithm> virtual path remains
//     only as the fallback for the non-inlined kinds (kAdaptive).
//   * The inline transitions evaluate exactly the classes' shared rule
//     helpers (StaticAllocation::Decide via specialization,
//     DynamicAllocation::SplitScheme / WriteSet verbatim), so the two paths
//     are bit-identical by construction — and asserted by
//     tests/serving_engine_test.cc.
//
// Aggregate accounting (TotalBreakdown / TotalRequests) is maintained
// incrementally on every served request, so the totals are O(1) reads
// rather than an O(objects) re-summation per call.

#ifndef OBJALLOC_CORE_OBJECT_SHARD_H_
#define OBJALLOC_CORE_OBJECT_SHARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/flat_directory.h"
#include "objalloc/util/status.h"

namespace objalloc::core {

using ObjectId = int64_t;

struct ObjectConfig {
  ProcessorSet initial_scheme;               // also fixes t
  AlgorithmKind algorithm = AlgorithmKind::kDynamic;
};

// Per-object and aggregate accounting.
struct ObjectStats {
  int64_t requests = 0;
  model::CostBreakdown breakdown;
  ProcessorSet scheme;  // current allocation scheme
};

class ObjectShard {
 public:
  // Sentinel returned by SlotOf for unregistered ids.
  static constexpr uint32_t kInvalidSlot =
      util::FlatDirectory<uint32_t>::kNotFound;

  ObjectShard(int num_processors, const model::CostModel& cost_model);

  // Movable so ObjectService can hold shards by value.
  ObjectShard(ObjectShard&&) = default;
  ObjectShard& operator=(ObjectShard&&) = default;

  // Registers an object. Fails on duplicate ids, empty or out-of-range
  // schemes, and algorithm/threshold mismatches (DA needs t >= 2).
  util::Status AddObject(ObjectId id, const ObjectConfig& config);

  // Sizes every internal table (id → slot directory and the dense state
  // vector) ahead of a bulk registration, so registering N objects does
  // O(1) amortized rehashes and zero vector regrowth.
  void Reserve(size_t expected_objects) {
    directory_.Reserve(expected_objects);
    slots_.reserve(expected_objects);
  }

  bool HasObject(ObjectId id) const { return directory_.Contains(id); }
  size_t object_count() const { return slots_.size(); }
  int num_processors() const { return num_processors_; }

  // Dense slot of `id`, or kInvalidSlot. One flat-directory probe —
  // resolve once, then serve through the slot without hashing.
  uint32_t SlotOf(ObjectId id) const { return directory_.Find(id); }

  // Id stored at `slot`; requires slot < object_count(). Handle validation
  // cross-checks this against the handle's claimed id.
  ObjectId IdAt(uint32_t slot) const { return slots_[slot].id; }

  // Serves one request against one object, returning the request's cost.
  // Requests against the same object must arrive in stream order.
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Validation-free hot path: the caller has already resolved the slot
  // (SlotOf / ObjectHandle) and admitted the request (processor in range).
  // The request's breakdown is additionally accumulated into `*delta` when
  // non-null so a batch can account its own traffic without re-walking the
  // shard.
  double ServeSlot(uint32_t slot, const Request& request,
                   model::CostBreakdown* delta);

  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;

  // Incrementally maintained aggregates; O(1).
  const model::CostBreakdown& TotalBreakdown() const {
    return total_breakdown_;
  }
  double TotalCost() const { return total_breakdown_.Cost(cost_model_); }
  int64_t TotalRequests() const { return total_requests_; }

  // Object ids in ascending order — the explicit sort that aggregation
  // points use to iterate deterministically over the unordered table.
  std::vector<ObjectId> SortedObjectIds() const;

 private:
  // One dense slot: the tagged-union algorithm state plus the per-object
  // cost constants the inline dispatch reads instead of multiplying out
  // CostModel terms per event. The scalar constants are folded in the
  // *same association order* as CostBreakdown::Cost — (ctrl*cc + data*cd)
  // + io*cio — so precomputation cannot perturb a single bit.
  struct SlotState {
    // Hot: dispatch tag and decision state.
    AlgorithmKind kind = AlgorithmKind::kStatic;
    int32_t t = 0;           // availability threshold (initial scheme size)
    ProcessorSet scheme;     // current allocation scheme
    ProcessorSet f;          // DA: core set F
    int32_t p = -1;          // DA: floating processor
    uint32_t next_f = 0;     // DA: round-robin F index for saving-reads
    // Hot: precomputed scalar costs.
    double cost_read_local = 0;   // read by a scheme member: one input
    double cost_read_remote = 0;  // SA remote plain read / DA saving-read
    // SA: full cost of a write by a member / non-member of Q.
    // DA: the (t-1)*cd data term / t*cio io term of a write (the varying
    //     control term is added per event in canonical order).
    double cost_write_a = 0;
    double cost_write_b = 0;
    // Warm: identity, accounting, and the virtual fallback.
    ObjectId id = -1;
    int64_t requests = 0;
    model::CostBreakdown breakdown;
    std::unique_ptr<DomAlgorithm> fallback;  // non-inlined kinds only
  };

  int num_processors_;
  model::CostModel cost_model_;
  std::vector<SlotState> slots_;
  util::FlatDirectory<uint32_t> directory_;  // id → slot
  model::CostBreakdown total_breakdown_;
  int64_t total_requests_ = 0;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_SHARD_H_
