// ObjectShard — the per-object state machine of the multi-object serving
// path, extracted so it can be replicated: a shard owns a disjoint subset of
// the objects (hash-partitioned by the ObjectService) and executes the
// requests routed to it strictly in stream order. Because objects never span
// shards, per-object request order — the only order the DOM algorithms are
// sensitive to — is preserved no matter how many shards exist, which is the
// heart of the service layer's determinism argument (DESIGN.md §7).
//
// The shard is the devirtualized serving engine (DESIGN.md §8):
//
//   * Object state lives in a dense std::vector indexed by *slot*; the
//     unordered_map survives only as the id → slot directory. Slots are
//     stable (objects are never removed), so a slot resolved once — an
//     ObjectHandle at the service layer — serves forever without hashing.
//   * The common algorithms (SA, DA) are stored as a tagged union of inline
//     state inside the slot and dispatched by a switch on AlgorithmKind —
//     no heap indirection, no virtual Step() call, and the per-request cost
//     is read from per-object constants precomputed from the CostModel at
//     registration. The std::unique_ptr<DomAlgorithm> virtual path remains
//     only as the fallback for the non-inlined kinds (kAdaptive).
//   * The inline transitions evaluate exactly the classes' shared rule
//     helpers (StaticAllocation::Decide via specialization,
//     DynamicAllocation::SplitScheme / WriteSet verbatim), so the two paths
//     are bit-identical by construction — and asserted by
//     tests/serving_engine_test.cc.
//
// Aggregate accounting (TotalBreakdown / TotalRequests) is maintained
// incrementally on every served request, so the totals are O(1) reads
// rather than an O(objects) re-summation per call.
//
// Fault tolerance (DESIGN.md §9): the shard additionally owns the per-object
// half of the failure model. Crashes scrub schemes *lazily*: the service
// appends every applied crash to an append-only CrashLog, each slot keeps
// its position in that log, and ServeSlotFaulty starts by dropping members
// crashed at fault-time indices in the window since the object's previous
// event — exactly that window, which keeps scheme state a pure function of
// per-object event order even when a member joins and crashes inside one
// batch (an eager scrub at crash time would run against pre-batch schemes
// and miss, or mis-order, such members). A crashed copy is stale on
// recovery — erasure is never undone by a later recover, matching the
// simulator's recover-with-invalidated-copy semantics. NoteCrash registers
// crash-time scheme members in a degraded-slot directory for eager repair;
// ServeSlotFaulty itself is the liveness-aware twin of ServeSlot —
// execution sets intersected with the live set, t-availability repaired by
// deterministic re-replication charged as saving-reads, message loss
// retried with exponential-backoff accounting — that is bit-identical to
// ServeSlot when no fault fires.

#ifndef OBJALLOC_CORE_OBJECT_SHARD_H_
#define OBJALLOC_CORE_OBJECT_SHARD_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/core/fault_injector.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/flat_directory.h"
#include "objalloc/util/status.h"

namespace objalloc::core {

using ObjectId = int64_t;

struct ObjectConfig {
  ProcessorSet initial_scheme;               // also fixes t
  AlgorithmKind algorithm = AlgorithmKind::kDynamic;
};

// Per-object and aggregate accounting.
struct ObjectStats {
  int64_t requests = 0;
  model::CostBreakdown breakdown;
  ProcessorSet scheme;  // current allocation scheme
};

class ObjectShard {
 public:
  // Sentinel returned by SlotOf for unregistered ids.
  static constexpr uint32_t kInvalidSlot =
      util::FlatDirectory<uint32_t>::kNotFound;

  ObjectShard(int num_processors, const model::CostModel& cost_model);

  // Movable so ObjectService can hold shards by value.
  ObjectShard(ObjectShard&&) = default;
  ObjectShard& operator=(ObjectShard&&) = default;

  // Registers an object. Fails on duplicate ids, empty or out-of-range
  // schemes, and algorithm/threshold mismatches (DA needs t >= 2).
  util::Status AddObject(ObjectId id, const ObjectConfig& config);

  // The validation half of AddObject, minus the duplicate-id check (that
  // needs a directory). Static so the service layer can pre-validate a
  // registration *before* write-ahead logging it: a logged AddObject record
  // must never fail on replay.
  static util::Status ValidateConfig(const ObjectConfig& config,
                                     int num_processors);

  // Sizes every internal table (id → slot directory and the dense state
  // vector) ahead of a bulk registration, so registering N objects does
  // O(1) amortized rehashes and zero vector regrowth.
  void Reserve(size_t expected_objects) {
    directory_.Reserve(expected_objects);
    slots_.reserve(expected_objects);
  }

  bool HasObject(ObjectId id) const { return directory_.Contains(id); }
  size_t object_count() const { return slots_.size(); }
  int num_processors() const { return num_processors_; }

  // Dense slot of `id`, or kInvalidSlot. One flat-directory probe —
  // resolve once, then serve through the slot without hashing.
  uint32_t SlotOf(ObjectId id) const { return directory_.Find(id); }

  // Id stored at `slot`; requires slot < object_count(). Handle validation
  // cross-checks this against the handle's claimed id.
  ObjectId IdAt(uint32_t slot) const { return slots_[slot].id; }

  // Availability threshold / algorithm of the object at `slot` (degraded
  // admission checks |live| >= t per event without re-hashing the id).
  int32_t ThresholdAt(uint32_t slot) const { return slots_[slot].t; }
  AlgorithmKind KindAt(uint32_t slot) const { return slots_[slot].kind; }

  // True when any registered object runs through the virtual fallback
  // (kAdaptive): those algorithms have no defined failure semantics, so the
  // fault layer refuses to engage while one exists.
  bool HasFallbackObjects() const { return fallback_objects_ > 0; }

  // Serves one request against one object, returning the request's cost.
  // Requests against the same object must arrive in stream order.
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Validation-free hot path: the caller has already resolved the slot
  // (SlotOf / ObjectHandle) and admitted the request (processor in range).
  // The request's breakdown is additionally accumulated into `*delta` when
  // non-null so a batch can account its own traffic without re-walking the
  // shard.
  double ServeSlot(uint32_t slot, const Request& request,
                   model::CostBreakdown* delta);

  // Liveness-aware twin of ServeSlot for the fault-injection path. The
  // caller guarantees the issuer is live and |live| >= t for this object
  // (degraded admission), and that `crash_log` holds every applied crash at
  // a nondecreasing fault-time index. First scrubs members crashed since
  // the object's previous event (records in (last event, event_index]),
  // then repairs the scheme to t live replicas before the request runs (and
  // again after a write whose execution set lost members), charges
  // deterministic message-loss retries, and — when `check_invariant` —
  // asserts |scheme ∩ live| >= t afterwards. With an all-live set and no
  // loss draws this computes bit-identical costs and state transitions to
  // ServeSlot (asserted by tests/fault_injection_test). Only inlinable
  // kinds (SA, DA) are supported.
  double ServeSlotFaulty(uint32_t slot, const Request& request,
                         size_t event_index, ProcessorSet live,
                         const CrashLog& crash_log,
                         const FaultInjector& injector,
                         model::CostBreakdown* delta, FaultStats* stats,
                         bool check_invariant);

  // Registers every object whose scheme holds crashed processor `p` in the
  // degraded directory for eager repair. The scheme itself is *not*
  // mutated here: eviction happens lazily from the crash log on the
  // object's serve timeline (see ServeSlotFaulty), the only order in which
  // in-batch joins and crashes compose correctly.
  void NoteCrash(ProcessorId p);

  // Eagerly repairs every degraded object that can reach t live replicas
  // (lowest slots first — deterministic): pending crash-log records are
  // applied first, then the scheme is re-replicated up to t, charged into
  // the lifetime accounting. Objects whose t exceeds |live| stay degraded.
  // Returns the number of replicas created.
  int64_t RepairAllDegraded(ProcessorSet live, size_t event_index,
                            const CrashLog& crash_log,
                            const FaultInjector& injector, FaultStats* stats,
                            bool check_invariant);

  // Applies every remaining crash-log record to every slot and resets the
  // per-slot log positions and the degraded registry. Called when the
  // service arms or disarms fault mode, so schemes reflect the full crash
  // history before the log is discarded.
  void FlushCrashLog(const CrashLog& crash_log);

  // Marks the object at `slot` as born after the first `pos` crash-log
  // records: crashes recorded before registration (its scheme was validated
  // against the then-live set) never apply to it.
  void SetCrashLogStart(uint32_t slot, size_t pos) {
    slots_[slot].crash_log_pos = pos;
  }

  // Objects currently registered as degraded (|scheme| < t or broken DA
  // core set after crashes) and not yet repaired.
  size_t degraded_count() const { return degraded_.size(); }

  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;

  // Incrementally maintained aggregates; O(1).
  const model::CostBreakdown& TotalBreakdown() const {
    return total_breakdown_;
  }
  double TotalCost() const { return total_breakdown_.Cost(cost_model_); }
  int64_t TotalRequests() const { return total_requests_; }

  // Object ids in ascending order — the explicit sort that aggregation
  // points use to iterate deterministically over the unordered table.
  std::vector<ObjectId> SortedObjectIds() const;

  // --- Durability (core/checkpoint.h) ---------------------------------

  // Serializes the shard's full state — slot table in slot order (identity,
  // scheme, DA split, crash-log cursor, per-object accounting), lifetime
  // aggregates, and the degraded registry — as one checkpoint record
  // payload.
  void AppendSnapshot(std::string* out) const;

  // Restores a snapshot into a freshly constructed, still-empty shard built
  // with the writer's processor count and cost model. Rebuilds the id→slot
  // directory and re-derives the per-slot cost constants from (kind, t) via
  // the same helper AddObject uses, so a restored slot is bit-identical to
  // one that lived through the original run. Every field is range-checked;
  // a payload that deserializes but violates an invariant (unknown kind,
  // out-of-range scheme, duplicate id) is rejected as Internal — the
  // caller falls back to an older checkpoint generation.
  util::Status RestoreSnapshot(std::string_view payload);

 private:
  // One dense slot: the tagged-union algorithm state plus the per-object
  // cost constants the inline dispatch reads instead of multiplying out
  // CostModel terms per event. The scalar constants are folded in the
  // *same association order* as CostBreakdown::Cost — (ctrl*cc + data*cd)
  // + io*cio — so precomputation cannot perturb a single bit.
  struct SlotState {
    // Hot: dispatch tag and decision state.
    AlgorithmKind kind = AlgorithmKind::kStatic;
    int32_t t = 0;           // availability threshold (initial scheme size)
    ProcessorSet scheme;     // current allocation scheme
    ProcessorSet f;          // DA: core set F
    int32_t p = -1;          // DA: floating processor
    uint32_t next_f = 0;     // DA: round-robin F index for saving-reads
    // Hot: precomputed scalar costs.
    double cost_read_local = 0;   // read by a scheme member: one input
    double cost_read_remote = 0;  // SA remote plain read / DA saving-read
    // SA: full cost of a write by a member / non-member of Q.
    // DA: the (t-1)*cd data term / t*cio io term of a write (the varying
    //     control term is added per event in canonical order).
    double cost_write_a = 0;
    double cost_write_b = 0;
    // Warm: identity, accounting, and the virtual fallback.
    ObjectId id = -1;
    // Crash-log records below this position are already applied to the
    // scheme; monotone per slot (per-object event indices only grow).
    size_t crash_log_pos = 0;
    int64_t requests = 0;
    model::CostBreakdown breakdown;
    std::unique_ptr<DomAlgorithm> fallback;  // non-inlined kinds only
  };

  // Registers `slot` as degraded (idempotent).
  void MarkDegraded(uint32_t slot);

  // Fills the precomputed per-slot cost constants from (kind, t) and the
  // shard's cost model — shared by AddObject and RestoreSnapshot so both
  // paths fold the scalars in the identical association order (a restored
  // slot must not differ from the original by even one rounding).
  void InitSlotCosts(SlotState* state) const;

  // Erases from `state`'s scheme every crash-log member recorded at a
  // fault-time index <= `up_to_index` that the slot has not yet applied,
  // and advances the slot's log position past them.
  void SyncSlotWithCrashes(SlotState* state, const CrashLog& crash_log,
                           size_t up_to_index);

  // Re-replicates `state`'s scheme up to t from the lowest-id live
  // processors, each copy charged as a saving-read ({1 control, 1 data,
  // 2 io}) with loss retries; re-derives DA's (F, p) split from the t
  // lowest members of the repaired scheme; clears the degraded mark and
  // records a repair-latency sample (virtual units) in `*stats`.
  void RepairScheme(SlotState* state, uint32_t slot, ProcessorSet live,
                    size_t event_index, const FaultInjector& injector,
                    uint64_t* ordinal, model::CostBreakdown* breakdown,
                    FaultStats* stats);

  // Adds `count` transmissions of one message type to `*breakdown` plus the
  // deterministic loss retries of each (one duplicate message per lost
  // attempt, exponential backoff accounted in stats).
  void ChargeMessages(bool control, int64_t count, size_t event_index,
                      const FaultInjector& injector, uint64_t* ordinal,
                      model::CostBreakdown* breakdown,
                      FaultStats* stats) const;

  int num_processors_;
  model::CostModel cost_model_;
  std::vector<SlotState> slots_;
  util::FlatDirectory<uint32_t> directory_;  // id → slot
  model::CostBreakdown total_breakdown_;
  int64_t total_requests_ = 0;
  size_t fallback_objects_ = 0;  // objects on the virtual fallback path
  // Degraded-object registry: slot → 1 while |scheme| < t (or DA's core
  // set is broken) after a crash. The directory dedupes (erased on repair —
  // the FlatDirectory tombstone path); the list gives deterministic
  // iteration order and is compacted by RepairAllDegraded.
  util::FlatDirectory<uint32_t> degraded_;
  std::vector<uint32_t> degraded_list_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_SHARD_H_
