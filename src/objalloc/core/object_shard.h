// ObjectShard — the per-object state machine of the multi-object serving
// path, extracted so it can be replicated: a shard owns a disjoint subset of
// the objects (hash-partitioned by the ObjectService) and executes the
// requests routed to it strictly in stream order. Because objects never span
// shards, per-object request order — the only order the DOM algorithms are
// sensitive to — is preserved no matter how many shards exist, which is the
// heart of the service layer's determinism argument (DESIGN.md §7).
//
// Aggregate accounting (TotalBreakdown / TotalRequests) is maintained
// incrementally on every served request, so the totals are O(1) reads
// rather than an O(objects) re-summation per call.

#ifndef OBJALLOC_CORE_OBJECT_SHARD_H_
#define OBJALLOC_CORE_OBJECT_SHARD_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/util/status.h"

namespace objalloc::core {

using ObjectId = int64_t;

struct ObjectConfig {
  ProcessorSet initial_scheme;               // also fixes t
  AlgorithmKind algorithm = AlgorithmKind::kDynamic;
};

// Per-object and aggregate accounting.
struct ObjectStats {
  int64_t requests = 0;
  model::CostBreakdown breakdown;
  ProcessorSet scheme;  // current allocation scheme
};

class ObjectShard {
 public:
  ObjectShard(int num_processors, const model::CostModel& cost_model);

  // Movable so ObjectService can hold shards by value.
  ObjectShard(ObjectShard&&) = default;
  ObjectShard& operator=(ObjectShard&&) = default;

  // Registers an object. Fails on duplicate ids, empty or out-of-range
  // schemes, and algorithm/threshold mismatches (DA needs t >= 2).
  util::Status AddObject(ObjectId id, const ObjectConfig& config);

  // Sizes the object table ahead of a bulk registration.
  void Reserve(size_t expected_objects) { objects_.reserve(expected_objects); }

  bool HasObject(ObjectId id) const { return objects_.count(id) > 0; }
  size_t object_count() const { return objects_.size(); }
  int num_processors() const { return num_processors_; }

  // Serves one request against one object, returning the request's cost.
  // Requests against the same object must arrive in stream order.
  util::StatusOr<double> Serve(ObjectId id, const Request& request);

  // Validation-free hot path for the batched service layer: the caller has
  // already admitted the batch (object exists, processor in range). The
  // request's breakdown is additionally accumulated into `*delta` so the
  // batch can account its own traffic without re-walking the shard.
  double ServeAdmitted(ObjectId id, const Request& request,
                       model::CostBreakdown* delta);

  util::StatusOr<ObjectStats> StatsFor(ObjectId id) const;

  // Incrementally maintained aggregates; O(1).
  const model::CostBreakdown& TotalBreakdown() const {
    return total_breakdown_;
  }
  double TotalCost() const { return total_breakdown_.Cost(cost_model_); }
  int64_t TotalRequests() const { return total_requests_; }

  // Object ids in ascending order — the explicit sort that aggregation
  // points use to iterate deterministically over the unordered table.
  std::vector<ObjectId> SortedObjectIds() const;

 private:
  struct ObjectState {
    std::unique_ptr<DomAlgorithm> algorithm;
    int t = 0;
    ProcessorSet scheme;
    ObjectStats stats;
  };

  double ServeState(ObjectId id, ObjectState& state, const Request& request,
                    model::CostBreakdown* delta);

  int num_processors_;
  model::CostModel cost_model_;
  std::unordered_map<ObjectId, ObjectState> objects_;
  model::CostBreakdown total_breakdown_;
  int64_t total_requests_ = 0;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_OBJECT_SHARD_H_
