#include "objalloc/core/object_service.h"

#include <algorithm>
#include <limits>

#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"

namespace objalloc::core {

namespace {

// Packs a resolved route so the serve pass never re-hashes: high word the
// shard, low word the dense slot.
inline uint64_t PackRoute(size_t shard, uint32_t slot) {
  return (static_cast<uint64_t>(shard) << 32) | slot;
}

}  // namespace

util::Status ServiceOptions::Validate() const {
  if (num_shards < 1 || num_shards > 65536) {
    return util::Status::InvalidArgument("num_shards out of range");
  }
  return util::Status::Ok();
}

ObjectService::ObjectService(int num_processors,
                             const model::CostModel& cost_model,
                             const ServiceOptions& options)
    : num_processors_(num_processors), cost_model_(cost_model) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    shards_.emplace_back(num_processors, cost_model);
  }
  shard_events_.resize(shards_.size());
  shard_deltas_.resize(shards_.size());
  const uint64_t n = shards_.size();
  shard_mask_ = (n & (n - 1)) == 0 ? n - 1 : ~uint64_t{0};
}

util::StatusOr<ObjectService> ObjectService::Create(
    int num_processors, const model::CostModel& cost_model,
    const ServiceOptions& options) {
  if (num_processors < 1 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument(
        "num_processors out of range [1, " +
        std::to_string(util::kMaxProcessors) + "]");
  }
  OBJALLOC_RETURN_IF_ERROR(cost_model.Validate());
  OBJALLOC_RETURN_IF_ERROR(options.Validate());
  return ObjectService(num_processors, cost_model, options);
}

size_t ObjectService::ShardOf(ObjectId id) const {
  // splitmix64 finalizer: a fixed, platform-independent mix so the
  // object -> shard map never depends on std::hash or build flavor.
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(shard_mask_ != ~uint64_t{0}
                                 ? x & shard_mask_
                                 : x % shards_.size());
}

util::Status ObjectService::AddObject(ObjectId id,
                                      const ObjectConfig& config) {
  if (injector_ != nullptr) [[unlikely]] {
    // Registrations under fault mode must respect the fault layer's two
    // preconditions: inlinable algorithm kind, and no replica born on a
    // crashed processor (scheme ⊆ live is the scrub invariant).
    if (config.algorithm != AlgorithmKind::kStatic &&
        config.algorithm != AlgorithmKind::kDynamic) {
      return util::Status::FailedPrecondition(
          "fault mode supports only the inlined algorithm kinds");
    }
    if (!config.initial_scheme.IsSubsetOf(live_)) {
      return util::Status::FailedPrecondition(
          "initial scheme " + config.initial_scheme.ToString() +
          " includes crashed processors (live " + live_.ToString() + ")");
    }
  }
  const size_t shard = ShardOf(id);
  util::Status status = shards_[shard].AddObject(id, config);
  if (status.ok()) {
    const uint32_t slot = shards_[shard].SlotOf(id);
    route_directory_.Insert(id, PackRoute(shard, slot));
    if (injector_ != nullptr) [[unlikely]] {
      // Born now: crashes already in the log predate this scheme (it was
      // validated against the current live set above) and must not apply.
      shards_[shard].SetCrashLogStart(slot, crash_log_.size());
    }
  }
  return status;
}

void ObjectService::ReserveObjects(size_t expected_total) {
  // Objects spread uniformly under the hash; a little headroom avoids the
  // last-rehash cliff without over-reserving small shards.
  const size_t per_shard = expected_total / shards_.size() + 8;
  for (ObjectShard& shard : shards_) shard.Reserve(per_shard);
  route_directory_.Reserve(expected_total);
}

bool ObjectService::HasObject(ObjectId id) const {
  return route_directory_.Contains(id);
}

size_t ObjectService::object_count() const {
  size_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.object_count();
  return total;
}

util::StatusOr<ObjectHandle> ObjectService::Resolve(ObjectId id) const {
  const uint64_t route = route_directory_.Find(id);
  if (route == util::FlatDirectory<uint64_t>::kNotFound) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  return ObjectHandle{static_cast<uint32_t>(route >> 32),
                      static_cast<uint32_t>(route), id};
}

util::StatusOr<double> ObjectService::Serve(ObjectId id,
                                            const Request& request) {
  if (injector_ != nullptr) [[unlikely]] {
    return util::Status::FailedPrecondition(
        "single-request Serve bypasses fault time; use ServeBatch in "
        "fault mode");
  }
  const uint64_t route = route_directory_.Find(id);
  if (route == util::FlatDirectory<uint64_t>::kNotFound) [[unlikely]] {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  if (request.processor < 0 || request.processor >= num_processors_)
      [[unlikely]] {
    return util::Status::OutOfRange("processor out of range");
  }
  return shards_[route >> 32].ServeSlot(static_cast<uint32_t>(route),
                                        request, nullptr);
}

util::StatusOr<double> ObjectService::Serve(const ObjectHandle& handle,
                                            const Request& request) {
  if (injector_ != nullptr) [[unlikely]] {
    return util::Status::FailedPrecondition(
        "single-request Serve bypasses fault time; use ServeBatch in "
        "fault mode");
  }
  if (handle.shard >= shards_.size() ||
      handle.slot >= shards_[handle.shard].object_count() ||
      shards_[handle.shard].IdAt(handle.slot) != handle.id) [[unlikely]] {
    return util::Status::InvalidArgument(
        "stale or invalid handle for object " + std::to_string(handle.id));
  }
  if (request.processor < 0 || request.processor >= num_processors_)
      [[unlikely]] {
    return util::Status::OutOfRange("processor out of range");
  }
  return shards_[handle.shard].ServeSlot(handle.slot, request, nullptr);
}

template <typename EventT>
util::Status ObjectService::ServeBatchImpl(std::span<const EventT> events,
                                           BatchResult* result) {
  if (events.size() > size_t{std::numeric_limits<uint32_t>::max()})
      [[unlikely]] {
    return util::Status::InvalidArgument(
        "batch exceeds 2^32 - 1 events; split it");
  }
  result->costs.clear();
  result->costs.resize(events.size());
  result->breakdown = model::CostBreakdown();
  result->cost = 0;
  result->served.clear();
  result->unavailable = 0;

  // With one worker (or one shard) the fan-out machinery would be pure
  // overhead: skip the per-shard partition and delta merge and serve the
  // admitted batch in place, in submission order. Per-object request order
  // — the only order the algorithms observe — is the same either way, and
  // breakdown counts are integers, so both modes are bit-identical.
  const bool parallel = shards_.size() > 1 && util::GlobalThreads() > 1 &&
                        !util::InParallelWorker();

  // Admission pass: validate everything and resolve each event's (shard,
  // slot) route exactly once, before any shard state changes, so a
  // rejected batch leaves the service untouched.
  routes_.resize(events.size());
  if (parallel) {
    for (std::vector<uint32_t>& list : shard_events_) list.clear();
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const EventT& event = events[i];
    uint64_t route;
    if constexpr (std::is_same_v<EventT, workload::MultiObjectEvent>) {
      route = route_directory_.Find(event.object);
      if (route == util::FlatDirectory<uint64_t>::kNotFound) {
        return util::Status::NotFound(
            "batch event " + std::to_string(i) + ": unknown object " +
            std::to_string(event.object));
      }
    } else {
      const ObjectHandle& handle = event.handle;
      route = PackRoute(handle.shard, handle.slot);
      if (handle.shard >= shards_.size() ||
          handle.slot >= shards_[handle.shard].object_count() ||
          shards_[handle.shard].IdAt(handle.slot) != handle.id) {
        return util::Status::InvalidArgument(
            "batch event " + std::to_string(i) +
            ": stale or invalid handle for object " +
            std::to_string(handle.id));
      }
    }
    if (event.request.processor < 0 ||
        event.request.processor >= num_processors_) {
      return util::Status::OutOfRange(
          "batch event " + std::to_string(i) + ": processor " +
          std::to_string(event.request.processor) + " out of range");
    }
    routes_[i] = route;
    if (parallel) {
      shard_events_[route >> 32].push_back(static_cast<uint32_t>(i));
    }
  }

  if (injector_ != nullptr) [[unlikely]] {
    // Fault mode: same admitted routes, chaos-aware serve passes. A batch
    // that fails the *validation* above never advances fault time (it is a
    // caller bug, not a fault); from here on, every presented event does.
    return ServeBatchFaultyTail(events, result, parallel);
  }

  if (!parallel) {
    // In-place serve: one pass, costs and traffic accumulated directly.
    for (size_t i = 0; i < events.size(); ++i) {
      const uint64_t route = routes_[i];
      result->costs[i] =
          shards_[route >> 32].ServeSlot(static_cast<uint32_t>(route),
                                         events[i].request,
                                         &result->breakdown);
    }
    result->cost = result->breakdown.Cost(cost_model_);
    return util::Status::Ok();
  }

  // Fan shards across the pool. Each chunk owns shards [lo, hi) outright —
  // their state, their events' cost slots, their delta accumulators — so
  // bodies write disjoint data (the determinism contract of ParallelFor).
  std::fill(shard_deltas_.begin(), shard_deltas_.end(),
            model::CostBreakdown());
  util::ParallelFor(0, shards_.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      ObjectShard& shard = shards_[s];
      model::CostBreakdown& delta = shard_deltas_[s];
      for (uint32_t index : shard_events_[s]) {
        result->costs[index] = shard.ServeSlot(
            static_cast<uint32_t>(routes_[index]), events[index].request,
            &delta);
      }
    }
  });

  // Merge in fixed shard order; integer counts make the sum exact.
  for (const model::CostBreakdown& delta : shard_deltas_) {
    result->breakdown += delta;
  }
  result->cost = result->breakdown.Cost(cost_model_);
  return util::Status::Ok();
}

template <typename EventT>
util::Status ObjectService::ServeBatchFaultyTail(std::span<const EventT> events,
                                                 BatchResult* result,
                                                 bool parallel) {
  result->served.assign(events.size(), 1);
  live_masks_.resize(events.size());

  // Serial fault pass: one tick of fault time per event. Scripted and random
  // crash/recover events fire here (in admission order — the only order
  // fault time knows), the live set at each event is recorded for the serve
  // pass, and degraded admission runs: an object needing more live
  // processors than exist rejects the whole batch (fault time keeps the
  // consumed window, so a replay meets the recovered world); a crashed
  // issuer refuses just its own event.
  const size_t base_index = injector_->cursor();
  bool reject = false;
  size_t reject_index = 0;
  int reject_live = 0;
  int32_t reject_t = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    fault_buffer_.clear();
    injector_->CollectFaults(live_, &fault_buffer_);
    for (const FaultEvent& fault : fault_buffer_) ApplyFault(fault);
    live_masks_[i] = live_;
    if (reject) continue;  // still ticking fault time for the window
    const uint64_t route = routes_[i];
    const int32_t t =
        shards_[route >> 32].ThresholdAt(static_cast<uint32_t>(route));
    if (live_.Size() < t) {
      reject = true;
      reject_index = i;
      reject_live = live_.Size();
      reject_t = t;
    } else if (!live_.Contains(events[i].request.processor)) {
      result->served[i] = 0;
    }
  }
  if (reject) {
    fault_stats_.rejected_batches += 1;
    return util::Status::Unavailable(
        "batch event " + std::to_string(reject_index) + ": only " +
        std::to_string(reject_live) +
        " processor(s) live, object needs t=" + std::to_string(reject_t) +
        "; replay the batch after recovery");
  }

  if (!parallel) {
    for (size_t i = 0; i < events.size(); ++i) {
      if (!result->served[i]) {
        result->costs[i] = 0;
        result->unavailable += 1;
        continue;
      }
      const uint64_t route = routes_[i];
      result->costs[i] = shards_[route >> 32].ServeSlotFaulty(
          static_cast<uint32_t>(route), events[i].request, base_index + i,
          live_masks_[i], crash_log_, *injector_, &result->breakdown,
          &fault_stats_, check_invariant_);
    }
    fault_stats_.unavailable_requests += result->unavailable;
    result->cost = result->breakdown.Cost(cost_model_);
    return util::Status::Ok();
  }

  // Parallel serve: identical to the plain fan-out, with per-shard
  // FaultStats scratch merged in fixed shard order (integer counts — exact;
  // repair-latency samples land in shard order, a deterministic multiset).
  std::fill(shard_deltas_.begin(), shard_deltas_.end(),
            model::CostBreakdown());
  shard_fault_stats_.assign(shards_.size(), FaultStats());
  util::ParallelFor(0, shards_.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      ObjectShard& shard = shards_[s];
      model::CostBreakdown& delta = shard_deltas_[s];
      FaultStats& stats = shard_fault_stats_[s];
      for (uint32_t index : shard_events_[s]) {
        if (!result->served[index]) {
          result->costs[index] = 0;
          continue;
        }
        result->costs[index] = shard.ServeSlotFaulty(
            static_cast<uint32_t>(routes_[index]), events[index].request,
            base_index + index, live_masks_[index], crash_log_, *injector_,
            &delta, &stats, check_invariant_);
      }
    }
  });
  for (size_t s = 0; s < shards_.size(); ++s) {
    result->breakdown += shard_deltas_[s];
    fault_stats_ += shard_fault_stats_[s];
  }
  for (size_t i = 0; i < events.size(); ++i) {
    if (!result->served[i]) result->unavailable += 1;
  }
  fault_stats_.unavailable_requests += result->unavailable;
  result->cost = result->breakdown.Cost(cost_model_);
  return util::Status::Ok();
}

void ObjectService::ApplyFault(const FaultEvent& event) {
  if (event.crash) {
    if (!live_.Contains(event.processor)) return;  // already crashed: no-op
    live_.Erase(event.processor);
    fault_stats_.crashes += 1;
    // Scheme eviction is lazy (per-object serve timeline, via the log);
    // only the repair registry is fed eagerly.
    crash_log_.push_back(CrashRecord{event.before_event, event.processor});
    for (ObjectShard& shard : shards_) shard.NoteCrash(event.processor);
  } else {
    if (live_.Contains(event.processor)) return;  // already live: no-op
    live_.Insert(event.processor);
    fault_stats_.recoveries += 1;
    // The recovered copy is stale: it rejoins schemes only through traffic
    // (saving-reads, repairs), never implicitly.
  }
}

util::Status ObjectService::EnableFaults(const FaultInjectorOptions& options,
                                         FaultSchedule schedule) {
  OBJALLOC_RETURN_IF_ERROR(options.Validate(num_processors_));
  OBJALLOC_RETURN_IF_ERROR(
      FaultInjector::ValidateSchedule(schedule, num_processors_));
  for (const ObjectShard& shard : shards_) {
    if (shard.HasFallbackObjects()) {
      return util::Status::FailedPrecondition(
          "fault injection supports only the inlined algorithm kinds "
          "(static, dynamic); a registered object uses a fallback");
    }
  }
  // Apply any crash history a previous fault session left pending, so the
  // new session starts from schemes consistent with everything that was
  // ever applied, then restart the log and the per-slot positions.
  for (ObjectShard& shard : shards_) shard.FlushCrashLog(crash_log_);
  crash_log_.clear();
  injector_ = std::make_unique<FaultInjector>(num_processors_, options,
                                              std::move(schedule));
  live_ = ProcessorSet::FirstN(num_processors_);
  fault_stats_ = FaultStats();
  return util::Status::Ok();
}

void ObjectService::DisableFaults() {
  for (ObjectShard& shard : shards_) shard.FlushCrashLog(crash_log_);
  crash_log_.clear();
  injector_.reset();
  live_ = ProcessorSet::FirstN(num_processors_);
}

util::Status ObjectService::Crash(ProcessorId p) {
  if (injector_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault mode not enabled (EnableFaults first)");
  }
  if (p < 0 || p >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  // Stamped at "now": events already served keep the member; every later
  // event evicts it via the log.
  ApplyFault(FaultEvent::Crash(injector_->cursor(), p));
  return util::Status::Ok();
}

util::Status ObjectService::Recover(ProcessorId p) {
  if (injector_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault mode not enabled (EnableFaults first)");
  }
  if (p < 0 || p >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  ApplyFault(FaultEvent::Recover(0, p));
  return util::Status::Ok();
}

int64_t ObjectService::RepairDegraded() {
  if (injector_ == nullptr) return 0;
  int64_t added = 0;
  const size_t index = injector_->cursor();  // repairs happen at "now"
  for (ObjectShard& shard : shards_) {
    added += shard.RepairAllDegraded(live_, index, crash_log_, *injector_,
                                     &fault_stats_, check_invariant_);
  }
  return added;
}

size_t ObjectService::degraded_count() const {
  size_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.degraded_count();
  return total;
}

util::Status ObjectService::ServeBatchInto(
    std::span<const workload::MultiObjectEvent> events, BatchResult* result) {
  return ServeBatchImpl(events, result);
}

util::Status ObjectService::ServeBatchInto(std::span<const HandleEvent> events,
                                           BatchResult* result) {
  return ServeBatchImpl(events, result);
}

util::StatusOr<BatchResult> ObjectService::ServeBatch(
    std::span<const workload::MultiObjectEvent> events) {
  BatchResult result;
  util::Status status = ServeBatchImpl(events, &result);
  if (!status.ok()) return status;
  return result;
}

util::StatusOr<BatchResult> ObjectService::ServeBatch(
    std::span<const HandleEvent> events) {
  BatchResult result;
  util::Status status = ServeBatchImpl(events, &result);
  if (!status.ok()) return status;
  return result;
}

util::StatusOr<StreamResult> ObjectService::ServeStream(
    workload::EventSource& source, size_t batch_size) {
  if (batch_size == 0) [[unlikely]] {
    return util::Status::InvalidArgument("batch_size must be positive");
  }
  // One buffer and one BatchResult recycled for the whole stream: the loop
  // body is allocation-free in steady state.
  std::vector<workload::MultiObjectEvent> buffer(batch_size);
  BatchResult batch;
  StreamResult result;
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return filled.status();
    if (*filled == 0) break;
    util::Status status = ServeBatchInto(
        std::span<const workload::MultiObjectEvent>(buffer.data(), *filled),
        &batch);
    if (!status.ok()) return status;
    result.events += static_cast<int64_t>(*filled);
    result.batches += 1;
    result.breakdown += batch.breakdown;
    result.unavailable += batch.unavailable;
  }
  result.cost = result.breakdown.Cost(cost_model_);
  return result;
}

util::StatusOr<ObjectStats> ObjectService::StatsFor(ObjectId id) const {
  return shards_[ShardOf(id)].StatsFor(id);
}

model::CostBreakdown ObjectService::TotalBreakdown() const {
  model::CostBreakdown total;
  for (const ObjectShard& shard : shards_) total += shard.TotalBreakdown();
  return total;
}

int64_t ObjectService::TotalRequests() const {
  int64_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.TotalRequests();
  return total;
}

std::vector<ObjectId> ObjectService::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(object_count());
  for (const ObjectShard& shard : shards_) {
    std::vector<ObjectId> shard_ids = shard.SortedObjectIds();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace objalloc::core
