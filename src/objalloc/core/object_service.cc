#include "objalloc/core/object_service.h"

#include <algorithm>
#include <limits>

#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"

namespace objalloc::core {

namespace {

// Packs a resolved route so the serve pass never re-hashes: high word the
// shard, low word the dense slot.
inline uint64_t PackRoute(size_t shard, uint32_t slot) {
  return (static_cast<uint64_t>(shard) << 32) | slot;
}

}  // namespace

util::Status ServiceOptions::Validate() const {
  if (num_shards < 1 || num_shards > 65536) {
    return util::Status::InvalidArgument("num_shards out of range");
  }
  return util::Status::Ok();
}

ObjectService::ObjectService(int num_processors,
                             const model::CostModel& cost_model,
                             const ServiceOptions& options)
    : num_processors_(num_processors), cost_model_(cost_model) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    shards_.emplace_back(num_processors, cost_model);
  }
  shard_events_.resize(shards_.size());
  shard_deltas_.resize(shards_.size());
  const uint64_t n = shards_.size();
  shard_mask_ = (n & (n - 1)) == 0 ? n - 1 : ~uint64_t{0};
}

size_t ObjectService::ShardOf(ObjectId id) const {
  // splitmix64 finalizer: a fixed, platform-independent mix so the
  // object -> shard map never depends on std::hash or build flavor.
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(shard_mask_ != ~uint64_t{0}
                                 ? x & shard_mask_
                                 : x % shards_.size());
}

util::Status ObjectService::AddObject(ObjectId id,
                                      const ObjectConfig& config) {
  const size_t shard = ShardOf(id);
  util::Status status = shards_[shard].AddObject(id, config);
  if (status.ok()) {
    route_directory_.Insert(
        id, PackRoute(shard, shards_[shard].SlotOf(id)));
  }
  return status;
}

void ObjectService::ReserveObjects(size_t expected_total) {
  // Objects spread uniformly under the hash; a little headroom avoids the
  // last-rehash cliff without over-reserving small shards.
  const size_t per_shard = expected_total / shards_.size() + 8;
  for (ObjectShard& shard : shards_) shard.Reserve(per_shard);
  route_directory_.Reserve(expected_total);
}

bool ObjectService::HasObject(ObjectId id) const {
  return route_directory_.Contains(id);
}

size_t ObjectService::object_count() const {
  size_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.object_count();
  return total;
}

util::StatusOr<ObjectHandle> ObjectService::Resolve(ObjectId id) const {
  const uint64_t route = route_directory_.Find(id);
  if (route == util::FlatDirectory<uint64_t>::kNotFound) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  return ObjectHandle{static_cast<uint32_t>(route >> 32),
                      static_cast<uint32_t>(route), id};
}

util::StatusOr<double> ObjectService::Serve(ObjectId id,
                                            const Request& request) {
  const uint64_t route = route_directory_.Find(id);
  if (route == util::FlatDirectory<uint64_t>::kNotFound) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  if (request.processor < 0 || request.processor >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  return shards_[route >> 32].ServeSlot(static_cast<uint32_t>(route),
                                        request, nullptr);
}

util::StatusOr<double> ObjectService::Serve(const ObjectHandle& handle,
                                            const Request& request) {
  if (handle.shard >= shards_.size() ||
      handle.slot >= shards_[handle.shard].object_count() ||
      shards_[handle.shard].IdAt(handle.slot) != handle.id) {
    return util::Status::InvalidArgument(
        "stale or invalid handle for object " + std::to_string(handle.id));
  }
  if (request.processor < 0 || request.processor >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  return shards_[handle.shard].ServeSlot(handle.slot, request, nullptr);
}

template <typename EventT>
util::Status ObjectService::ServeBatchImpl(std::span<const EventT> events,
                                           BatchResult* result) {
  OBJALLOC_CHECK_LE(events.size(),
                    size_t{std::numeric_limits<uint32_t>::max()});
  result->costs.clear();
  result->costs.resize(events.size());
  result->breakdown = model::CostBreakdown();
  result->cost = 0;

  // With one worker (or one shard) the fan-out machinery would be pure
  // overhead: skip the per-shard partition and delta merge and serve the
  // admitted batch in place, in submission order. Per-object request order
  // — the only order the algorithms observe — is the same either way, and
  // breakdown counts are integers, so both modes are bit-identical.
  const bool parallel = shards_.size() > 1 && util::GlobalThreads() > 1 &&
                        !util::InParallelWorker();

  // Admission pass: validate everything and resolve each event's (shard,
  // slot) route exactly once, before any shard state changes, so a
  // rejected batch leaves the service untouched.
  routes_.resize(events.size());
  if (parallel) {
    for (std::vector<uint32_t>& list : shard_events_) list.clear();
  }
  for (size_t i = 0; i < events.size(); ++i) {
    const EventT& event = events[i];
    uint64_t route;
    if constexpr (std::is_same_v<EventT, workload::MultiObjectEvent>) {
      route = route_directory_.Find(event.object);
      if (route == util::FlatDirectory<uint64_t>::kNotFound) {
        return util::Status::NotFound(
            "batch event " + std::to_string(i) + ": unknown object " +
            std::to_string(event.object));
      }
    } else {
      const ObjectHandle& handle = event.handle;
      route = PackRoute(handle.shard, handle.slot);
      if (handle.shard >= shards_.size() ||
          handle.slot >= shards_[handle.shard].object_count() ||
          shards_[handle.shard].IdAt(handle.slot) != handle.id) {
        return util::Status::InvalidArgument(
            "batch event " + std::to_string(i) +
            ": stale or invalid handle for object " +
            std::to_string(handle.id));
      }
    }
    if (event.request.processor < 0 ||
        event.request.processor >= num_processors_) {
      return util::Status::OutOfRange(
          "batch event " + std::to_string(i) + ": processor " +
          std::to_string(event.request.processor) + " out of range");
    }
    routes_[i] = route;
    if (parallel) {
      shard_events_[route >> 32].push_back(static_cast<uint32_t>(i));
    }
  }

  if (!parallel) {
    // In-place serve: one pass, costs and traffic accumulated directly.
    for (size_t i = 0; i < events.size(); ++i) {
      const uint64_t route = routes_[i];
      result->costs[i] =
          shards_[route >> 32].ServeSlot(static_cast<uint32_t>(route),
                                         events[i].request,
                                         &result->breakdown);
    }
    result->cost = result->breakdown.Cost(cost_model_);
    return util::Status::Ok();
  }

  // Fan shards across the pool. Each chunk owns shards [lo, hi) outright —
  // their state, their events' cost slots, their delta accumulators — so
  // bodies write disjoint data (the determinism contract of ParallelFor).
  std::fill(shard_deltas_.begin(), shard_deltas_.end(),
            model::CostBreakdown());
  util::ParallelFor(0, shards_.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      ObjectShard& shard = shards_[s];
      model::CostBreakdown& delta = shard_deltas_[s];
      for (uint32_t index : shard_events_[s]) {
        result->costs[index] = shard.ServeSlot(
            static_cast<uint32_t>(routes_[index]), events[index].request,
            &delta);
      }
    }
  });

  // Merge in fixed shard order; integer counts make the sum exact.
  for (const model::CostBreakdown& delta : shard_deltas_) {
    result->breakdown += delta;
  }
  result->cost = result->breakdown.Cost(cost_model_);
  return util::Status::Ok();
}

util::Status ObjectService::ServeBatchInto(
    std::span<const workload::MultiObjectEvent> events, BatchResult* result) {
  return ServeBatchImpl(events, result);
}

util::Status ObjectService::ServeBatchInto(std::span<const HandleEvent> events,
                                           BatchResult* result) {
  return ServeBatchImpl(events, result);
}

util::StatusOr<BatchResult> ObjectService::ServeBatch(
    std::span<const workload::MultiObjectEvent> events) {
  BatchResult result;
  util::Status status = ServeBatchImpl(events, &result);
  if (!status.ok()) return status;
  return result;
}

util::StatusOr<BatchResult> ObjectService::ServeBatch(
    std::span<const HandleEvent> events) {
  BatchResult result;
  util::Status status = ServeBatchImpl(events, &result);
  if (!status.ok()) return status;
  return result;
}

util::StatusOr<StreamResult> ObjectService::ServeStream(
    workload::EventSource& source, size_t batch_size) {
  OBJALLOC_CHECK_GT(batch_size, 0u);
  // One buffer and one BatchResult recycled for the whole stream: the loop
  // body is allocation-free in steady state.
  std::vector<workload::MultiObjectEvent> buffer(batch_size);
  BatchResult batch;
  StreamResult result;
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return filled.status();
    if (*filled == 0) break;
    util::Status status = ServeBatchInto(
        std::span<const workload::MultiObjectEvent>(buffer.data(), *filled),
        &batch);
    if (!status.ok()) return status;
    result.events += static_cast<int64_t>(*filled);
    result.batches += 1;
    result.breakdown += batch.breakdown;
  }
  result.cost = result.breakdown.Cost(cost_model_);
  return result;
}

util::StatusOr<ObjectStats> ObjectService::StatsFor(ObjectId id) const {
  return shards_[ShardOf(id)].StatsFor(id);
}

model::CostBreakdown ObjectService::TotalBreakdown() const {
  model::CostBreakdown total;
  for (const ObjectShard& shard : shards_) total += shard.TotalBreakdown();
  return total;
}

int64_t ObjectService::TotalRequests() const {
  int64_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.TotalRequests();
  return total;
}

std::vector<ObjectId> ObjectService::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(object_count());
  for (const ObjectShard& shard : shards_) {
    std::vector<ObjectId> shard_ids = shard.SortedObjectIds();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace objalloc::core
