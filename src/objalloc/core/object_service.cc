#include "objalloc/core/object_service.h"

#include <algorithm>
#include <limits>

#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"

namespace objalloc::core {

util::Status ServiceOptions::Validate() const {
  if (num_shards < 1 || num_shards > 65536) {
    return util::Status::InvalidArgument("num_shards out of range");
  }
  return util::Status::Ok();
}

ObjectService::ObjectService(int num_processors,
                             const model::CostModel& cost_model,
                             const ServiceOptions& options)
    : num_processors_(num_processors), cost_model_(cost_model) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    shards_.emplace_back(num_processors, cost_model);
  }
  shard_events_.resize(shards_.size());
}

size_t ObjectService::ShardOf(ObjectId id) const {
  // splitmix64 finalizer: a fixed, platform-independent mix so the
  // object -> shard map never depends on std::hash or build flavor.
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % shards_.size());
}

util::Status ObjectService::AddObject(ObjectId id,
                                      const ObjectConfig& config) {
  return shards_[ShardOf(id)].AddObject(id, config);
}

void ObjectService::ReserveObjects(size_t expected_total) {
  // Objects spread uniformly under the hash; a little headroom avoids the
  // last-rehash cliff without over-reserving small shards.
  const size_t per_shard = expected_total / shards_.size() + 8;
  for (ObjectShard& shard : shards_) shard.Reserve(per_shard);
}

bool ObjectService::HasObject(ObjectId id) const {
  return shards_[ShardOf(id)].HasObject(id);
}

size_t ObjectService::object_count() const {
  size_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.object_count();
  return total;
}

util::StatusOr<double> ObjectService::Serve(ObjectId id,
                                            const Request& request) {
  return shards_[ShardOf(id)].Serve(id, request);
}

util::StatusOr<BatchResult> ObjectService::ServeBatch(
    std::span<const workload::MultiObjectEvent> events) {
  OBJALLOC_CHECK_LE(events.size(),
                    size_t{std::numeric_limits<uint32_t>::max()});
  // Admission pass: validate everything (and partition by shard) before any
  // shard state changes, so a rejected batch leaves the service untouched.
  for (std::vector<uint32_t>& list : shard_events_) list.clear();
  for (size_t i = 0; i < events.size(); ++i) {
    const workload::MultiObjectEvent& event = events[i];
    const size_t shard = ShardOf(event.object);
    if (!shards_[shard].HasObject(event.object)) {
      return util::Status::NotFound(
          "batch event " + std::to_string(i) + ": unknown object " +
          std::to_string(event.object));
    }
    if (event.request.processor < 0 ||
        event.request.processor >= num_processors_) {
      return util::Status::OutOfRange(
          "batch event " + std::to_string(i) + ": processor " +
          std::to_string(event.request.processor) + " out of range");
    }
    shard_events_[shard].push_back(static_cast<uint32_t>(i));
  }

  BatchResult result;
  result.costs.resize(events.size());
  std::vector<model::CostBreakdown> shard_deltas(shards_.size());

  // Fan shards across the pool. Each chunk owns shards [lo, hi) outright —
  // their state, their events' cost slots, their delta accumulators — so
  // bodies write disjoint data (the determinism contract of ParallelFor).
  util::ParallelFor(0, shards_.size(), 1, [&](size_t lo, size_t hi) {
    for (size_t s = lo; s < hi; ++s) {
      ObjectShard& shard = shards_[s];
      model::CostBreakdown& delta = shard_deltas[s];
      for (uint32_t index : shard_events_[s]) {
        const workload::MultiObjectEvent& event = events[index];
        result.costs[index] =
            shard.ServeAdmitted(event.object, event.request, &delta);
      }
    }
  });

  // Merge in fixed shard order; integer counts make the sum exact.
  for (const model::CostBreakdown& delta : shard_deltas) {
    result.breakdown += delta;
  }
  result.cost = result.breakdown.Cost(cost_model_);
  return result;
}

util::StatusOr<StreamResult> ObjectService::ServeStream(
    workload::EventSource& source, size_t batch_size) {
  OBJALLOC_CHECK_GT(batch_size, 0u);
  std::vector<workload::MultiObjectEvent> buffer(batch_size);
  StreamResult result;
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return filled.status();
    if (*filled == 0) break;
    auto batch = ServeBatch(
        std::span<const workload::MultiObjectEvent>(buffer.data(), *filled));
    if (!batch.ok()) return batch.status();
    result.events += static_cast<int64_t>(*filled);
    result.batches += 1;
    result.breakdown += batch->breakdown;
  }
  result.cost = result.breakdown.Cost(cost_model_);
  return result;
}

util::StatusOr<ObjectStats> ObjectService::StatsFor(ObjectId id) const {
  return shards_[ShardOf(id)].StatsFor(id);
}

model::CostBreakdown ObjectService::TotalBreakdown() const {
  model::CostBreakdown total;
  for (const ObjectShard& shard : shards_) total += shard.TotalBreakdown();
  return total;
}

int64_t ObjectService::TotalRequests() const {
  int64_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.TotalRequests();
  return total;
}

std::vector<ObjectId> ObjectService::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(object_count());
  for (const ObjectShard& shard : shards_) {
    std::vector<ObjectId> shard_ids = shard.SortedObjectIds();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace objalloc::core
