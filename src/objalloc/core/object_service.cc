#include "objalloc/core/object_service.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"

namespace objalloc::core {

util::Status ServiceOptions::Validate() const {
  if (num_shards < 1 || num_shards > 65536) {
    return util::Status::InvalidArgument("num_shards out of range");
  }
  return util::Status::Ok();
}

ObjectService::ObjectService(int num_processors,
                             const model::CostModel& cost_model,
                             const ServiceOptions& options)
    : num_processors_(num_processors), cost_model_(cost_model) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  shards_.reserve(static_cast<size_t>(options.num_shards));
  for (int s = 0; s < options.num_shards; ++s) {
    // External-directory mode: the service's route table is the single
    // id -> (shard, slot) map; shards keep no directory of their own.
    shards_.emplace_back(num_processors, cost_model,
                         /*external_directory=*/true);
  }
  const uint64_t n = shards_.size();
  shard_mask_ = (n & (n - 1)) == 0 ? n - 1 : ~uint64_t{0};
  const uint32_t shard_bits =
      static_cast<uint32_t>(std::bit_width(n - 1));
  route_slot_bits_ = 32 - shard_bits;
  route_slot_mask_ =
      static_cast<uint32_t>((uint64_t{1} << route_slot_bits_) - 1);
}

util::StatusOr<ObjectService> ObjectService::Create(
    int num_processors, const model::CostModel& cost_model,
    const ServiceOptions& options) {
  if (num_processors < 1 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument(
        "num_processors out of range [1, " +
        std::to_string(util::kMaxProcessors) + "]");
  }
  OBJALLOC_RETURN_IF_ERROR(cost_model.Validate());
  OBJALLOC_RETURN_IF_ERROR(options.Validate());
  return ObjectService(num_processors, cost_model, options);
}

size_t ObjectService::ShardOf(ObjectId id) const {
  // splitmix64 finalizer: a fixed, platform-independent mix so the
  // object -> shard map never depends on std::hash or build flavor.
  uint64_t x = static_cast<uint64_t>(id) + 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(shard_mask_ != ~uint64_t{0}
                                 ? x & shard_mask_
                                 : x % shards_.size());
}

util::Status ObjectService::AddObject(ObjectId id,
                                      const ObjectConfig& config) {
  // Registration mutates a shard's slot table (possibly reallocating it):
  // no worker may be serving while that happens.
  FenceAsync();
  if (injector_ != nullptr) [[unlikely]] {
    // Registrations under fault mode must respect the fault layer's two
    // preconditions: inlinable algorithm kind, and no replica born on a
    // crashed processor (scheme ⊆ live is the scrub invariant).
    if (config.algorithm != AlgorithmKind::kStatic &&
        config.algorithm != AlgorithmKind::kDynamic) {
      return util::Status::FailedPrecondition(
          "fault mode supports only the inlined algorithm kinds");
    }
    if (!config.initial_scheme.IsSubsetOf(live_)) {
      return util::Status::FailedPrecondition(
          "initial scheme " + config.initial_scheme.ToString() +
          " includes crashed processors (live " + live_.ToString() + ")");
    }
  }
  if (durability_ != nullptr) [[unlikely]] {
    // Write-ahead: the registration record reaches the log before the shard
    // mutates, so it must be validated *here* — a logged AddObject may never
    // fail on replay.
    if (config.algorithm != AlgorithmKind::kStatic &&
        config.algorithm != AlgorithmKind::kDynamic) {
      return util::Status::FailedPrecondition(
          "durability supports only the inlined algorithm kinds (static, "
          "dynamic)");
    }
  }
  // The shards keep no directory in external mode, so the duplicate check
  // lives here — before the WAL write, which must never log a registration
  // that could fail on replay.
  if (route_directory_.Contains(id)) {
    return util::Status::InvalidArgument("duplicate object id " +
                                         std::to_string(id));
  }
  const size_t shard = ShardOf(id);
  // The slot the shard will hand out is its current span (objects are never
  // removed, so the free list is empty). Reject while it fits neither the
  // packed word's slot field nor the directory's reserved sentinels.
  const uint32_t next_slot = shards_[shard].slot_span();
  if (next_slot > route_slot_mask_ ||
      PackRoute(shard, next_slot) >= 0xFFFFFFFEu) [[unlikely]] {
    return util::Status::InvalidArgument(
        "shard " + std::to_string(shard) + " slot space exhausted (" +
        std::to_string(next_slot) + " objects)");
  }
  if (durability_ != nullptr) [[unlikely]] {
    OBJALLOC_RETURN_IF_ERROR(
        ObjectShard::ValidateConfig(config, num_processors_));
    std::string payload;
    EncodeAddObject(id, config, &payload);
    OBJALLOC_RETURN_IF_ERROR(LogOp(WalRecordType::kAddObject, payload));
  }
  util::StatusOr<uint32_t> slot = shards_[shard].AddObject(id, config);
  if (slot.ok()) {
    route_directory_.Insert(id, PackRoute(shard, *slot));
    if (injector_ != nullptr) [[unlikely]] {
      // Born now: crashes already in the log predate this scheme (it was
      // validated against the current live set above) and must not apply.
      shards_[shard].SetCrashLogStart(*slot, crash_log_.size());
    }
  }
  return slot.status();
}

void ObjectService::ReserveObjects(size_t expected_total) {
  FenceAsync();  // reserve may reallocate live slot tables
  // The hash splits objects binomially across shards: mean n/s per shard
  // with standard deviation < sqrt(mean). Four sigmas of headroom (plus a
  // floor for tiny reservations) make a mid-burst shard overflow — and the
  // page allocation it would cost — vanishingly unlikely, without
  // over-reserving: headroom is O(sqrt(n)) against an O(n) reservation.
  const size_t mean = expected_total / shards_.size();
  const size_t per_shard =
      mean + 4 * static_cast<size_t>(std::sqrt(static_cast<double>(mean))) +
      16;
  for (ObjectShard& shard : shards_) shard.Reserve(per_shard);
  route_directory_.Reserve(expected_total);
}

size_t ObjectService::MemoryUsageBytes() const {
  FenceAsync();
  size_t total = route_directory_.MemoryUsageBytes() +
                 routes_.capacity() * sizeof(routes_[0]) +
                 fault_buffer_.capacity() * sizeof(fault_buffer_[0]) +
                 live_masks_.capacity() * sizeof(live_masks_[0]);
  for (const ObjectShard& shard : shards_) total += shard.MemoryUsageBytes();
  return total;
}

bool ObjectService::HasObject(ObjectId id) const {
  return route_directory_.Contains(id);
}

size_t ObjectService::object_count() const {
  size_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.object_count();
  return total;
}

util::StatusOr<ObjectHandle> ObjectService::Resolve(ObjectId id) const {
  const uint32_t route = route_directory_.Find(id);
  if (route == util::FlatDirectory<uint32_t>::kNotFound) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  return ObjectHandle{static_cast<uint32_t>(RouteShard(route)),
                      RouteSlot(route), id};
}

util::StatusOr<double> ObjectService::Serve(ObjectId id,
                                            const Request& request) {
  if (injector_ != nullptr) [[unlikely]] {
    return util::Status::FailedPrecondition(
        "single-request Serve bypasses fault time; use ServeBatch in "
        "fault mode");
  }
  FenceAsync();  // this thread serves the shard directly
  const uint32_t route = route_directory_.Find(id);
  if (route == util::FlatDirectory<uint32_t>::kNotFound) [[unlikely]] {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  if (request.processor < 0 || request.processor >= num_processors_)
      [[unlikely]] {
    return util::Status::OutOfRange("processor out of range");
  }
  if (durability_ != nullptr) [[unlikely]] {
    OBJALLOC_RETURN_IF_ERROR(LogSingle(id, request));
  }
  const double cost =
      shards_[RouteShard(route)].ServeSlot(RouteSlot(route), request, nullptr);
  OBJALLOC_RETURN_IF_ERROR(FinishBatch());
  return cost;
}

util::StatusOr<double> ObjectService::Serve(const ObjectHandle& handle,
                                            const Request& request) {
  if (injector_ != nullptr) [[unlikely]] {
    return util::Status::FailedPrecondition(
        "single-request Serve bypasses fault time; use ServeBatch in "
        "fault mode");
  }
  FenceAsync();  // this thread serves the shard directly
  if (handle.shard >= shards_.size() ||
      handle.slot >= shards_[handle.shard].slot_span() ||
      shards_[handle.shard].IdAt(handle.slot) != handle.id) [[unlikely]] {
    return util::Status::InvalidArgument(
        "stale or invalid handle for object " + std::to_string(handle.id));
  }
  if (request.processor < 0 || request.processor >= num_processors_)
      [[unlikely]] {
    return util::Status::OutOfRange("processor out of range");
  }
  if (durability_ != nullptr) [[unlikely]] {
    OBJALLOC_RETURN_IF_ERROR(LogSingle(handle.id, request));
  }
  const double cost = shards_[handle.shard].ServeSlot(handle.slot, request,
                                                      nullptr);
  OBJALLOC_RETURN_IF_ERROR(FinishBatch());
  return cost;
}

template <typename EventT>
util::Status ObjectService::AdmitBatch(std::span<const EventT> events,
                                       BatchResult* result,
                                       BatchContext* context) {
  if (events.size() > size_t{std::numeric_limits<uint32_t>::max()})
      [[unlikely]] {
    return util::Status::InvalidArgument(
        "batch exceeds 2^32 - 1 events; split it");
  }
  result->costs.clear();
  result->costs.resize(events.size());
  result->breakdown = model::CostBreakdown();
  result->cost = 0;
  result->served.clear();
  result->unavailable = 0;

  // Admission pass: validate everything and resolve each event's (shard,
  // slot) route exactly once, before any shard state changes, so a
  // rejected batch leaves the service untouched. Validation reads only
  // registration-time state (the route directory, slot identities,
  // processor bounds) that in-flight batches never mutate — which is what
  // makes admitting batch n+1 while batch n is still being served safe.
  routes_.resize(events.size());
  for (size_t i = 0; i < events.size(); ++i) {
    const EventT& event = events[i];
    uint32_t route;
    if constexpr (std::is_same_v<EventT, workload::MultiObjectEvent>) {
      route = route_directory_.Find(event.object);
      if (route == util::FlatDirectory<uint32_t>::kNotFound) {
        return util::Status::NotFound(
            "batch event " + std::to_string(i) + ": unknown object " +
            std::to_string(event.object));
      }
    } else {
      const ObjectHandle& handle = event.handle;
      if (handle.shard >= shards_.size() ||
          handle.slot >= shards_[handle.shard].slot_span() ||
          shards_[handle.shard].IdAt(handle.slot) != handle.id) {
        return util::Status::InvalidArgument(
            "batch event " + std::to_string(i) +
            ": stale or invalid handle for object " +
            std::to_string(handle.id));
      }
      route = PackRoute(handle.shard, handle.slot);
    }
    if (event.request.processor < 0 ||
        event.request.processor >= num_processors_) {
      return util::Status::OutOfRange(
          "batch event " + std::to_string(i) + ": processor " +
          std::to_string(event.request.processor) + " out of range");
    }
    routes_[i] = route;
    if (context != nullptr) {
      // Partition for the executor while the route is hot: the worker gets
      // everything it needs (slot, request, cost cell index) by value.
      context->ops[RouteShard(route)].push_back(ShardOp{
          static_cast<uint32_t>(i), RouteSlot(route), event.request});
    }
  }
  return util::Status::Ok();
}

void ObjectService::EnsureExecutor() {
  const int workers =
      std::min(util::GlobalThreads(), static_cast<int>(shards_.size()));
  if (executor_ != nullptr && executor_workers_ == workers) return;
  // Thread-count change (ScopedThreads in tests, reconfiguration in
  // benchmarks): finalize whatever the old workers still hold, then let
  // them join before the replacement spawns.
  FenceAsync();
  executor_.reset();
  executor_ = std::make_unique<ShardExecutor>(shards_.data(), shards_.size(),
                                              workers);
  executor_workers_ = workers;
  async_.assign(executor_->depth(), AsyncBatch());
  async_active_ = 0;
}

void ObjectService::MergeAsync(uint32_t index) const {
  AsyncBatch& batch = async_[index];
  BatchContext& context = executor_->context(index);
  // Fixed shard order; integer counts make the sum exact (determinism
  // contract leg 3).
  for (const model::CostBreakdown& delta : context.deltas) {
    batch.result->breakdown += delta;
  }
  batch.result->cost = batch.result->breakdown.Cost(cost_model_);
  batch.result = nullptr;
  batch.active = false;
  --async_active_;
}

void ObjectService::FenceAsync() const {
  if (executor_ == nullptr || async_active_ == 0) return;
  for (uint32_t c = 0; c < static_cast<uint32_t>(async_.size()); ++c) {
    if (!async_[c].active) continue;
    executor_->Wait(c);
    MergeAsync(c);
  }
}

template <typename EventT>
util::Status ObjectService::ServeBatchImpl(std::span<const EventT> events,
                                           BatchResult* result) {
  // With one worker (or one shard, or when already inside a parallel
  // worker) the executor would be pure overhead: the serial path below
  // serves the admitted batch in place, in submission order, and never
  // touches a queue. Per-object request order — the only order the
  // algorithms observe — is the same either way, and breakdown counts are
  // integers, so both modes are bit-identical.
  const bool parallel = shards_.size() > 1 && util::GlobalThreads() > 1 &&
                        !util::InParallelWorker();

  if (!parallel || injector_ != nullptr) [[unlikely]] {
    // This thread is about to touch shard state directly (the serial serve,
    // or the fault tail's serial fault pass): quiesce the pipeline first.
    FenceAsync();
    OBJALLOC_RETURN_IF_ERROR(AdmitBatch(events, result, nullptr));
    if (durability_ != nullptr) [[unlikely]] {
      // Write-ahead: the admitted batch reaches the log before any shard
      // state changes. A persistent IO failure degrades durability and the
      // batch proceeds undurably — see LogBatch.
      OBJALLOC_RETURN_IF_ERROR(LogBatch(events));
    }
    if (injector_ != nullptr) [[unlikely]] {
      // Fault mode: same admitted routes, chaos-aware serve passes. A batch
      // that fails the *validation* above never advances fault time (it is a
      // caller bug, not a fault); from here on, every presented event does.
      util::Status status = ServeBatchFaultyTail(events, result, parallel);
      if (durability_ != nullptr) [[unlikely]] {
        // An UNAVAILABLE-rejected batch was logged and consumed fault-time
        // windows, so the checkpoint interval advances for it too; its
        // rejection status outranks a checkpoint error.
        const util::Status finish = FinishBatchDurable();
        if (status.ok()) status = finish;
      }
      return status;
    }
    // In-place serve: one pass, costs and traffic accumulated directly.
    for (size_t i = 0; i < events.size(); ++i) {
      const uint32_t route = routes_[i];
      result->costs[i] = shards_[RouteShard(route)].ServeSlot(
          RouteSlot(route), events[i].request, &result->breakdown);
    }
    result->cost = result->breakdown.Cost(cost_model_);
    return FinishBatch();
  }

  // Executor path, synchronous: acquire a pipeline context (finalizing the
  // async batch that last used it, if any), admit straight into its
  // per-shard op lists, enqueue, wait, merge. Earlier pipelined batches may
  // still be in flight on other contexts — the per-shard FIFO rings
  // guarantee this batch's sub-batches run after theirs, so waiting on this
  // context alone is enough for this result to be final.
  EnsureExecutor();
  const uint32_t index = executor_->PeekNextContext();
  if (async_[index].active) {
    executor_->Wait(index);
    MergeAsync(index);
    OBJALLOC_RETURN_IF_ERROR(FinishBatch());
  }
  const uint32_t acquired = executor_->Acquire();
  OBJALLOC_CHECK_EQ(acquired, index);
  BatchContext& context = executor_->context(index);
  OBJALLOC_RETURN_IF_ERROR(AdmitBatch(events, result, &context));
  if (durability_ != nullptr) [[unlikely]] {
    OBJALLOC_RETURN_IF_ERROR(LogBatch(events));
  }
  context.costs = result->costs.data();
  executor_->Submit(index);
  executor_->Wait(index);
  for (const model::CostBreakdown& delta : context.deltas) {
    result->breakdown += delta;
  }
  result->cost = result->breakdown.Cost(cost_model_);
  return FinishBatch();
}

template <typename EventT>
util::Status ObjectService::SubmitBatchImpl(std::span<const EventT> events,
                                            BatchResult* result,
                                            BatchTicket* ticket) {
  *ticket = BatchTicket{};  // completed until proven pipelined
  const bool parallel = shards_.size() > 1 && util::GlobalThreads() > 1 &&
                        !util::InParallelWorker();
  if (!parallel || injector_ != nullptr) [[unlikely]] {
    // Serial path: queues would add nothing. Fault mode: fault time is
    // global serial state (one tick per event in admission order), so a
    // fault batch must fully finish before the next is admitted. Both
    // degrade to the synchronous engine, which fences internally.
    return ServeBatchImpl(events, result);
  }
  EnsureExecutor();
  const uint32_t index = executor_->PeekNextContext();
  if (async_[index].active) {
    // Pipeline full (depth batches in flight): the oldest context's batch
    // is finalized here, which is what bounds queue occupancy.
    executor_->Wait(index);
    MergeAsync(index);
    OBJALLOC_RETURN_IF_ERROR(FinishBatch());
  }
  const uint32_t acquired = executor_->Acquire();
  OBJALLOC_CHECK_EQ(acquired, index);
  BatchContext& context = executor_->context(index);
  OBJALLOC_RETURN_IF_ERROR(AdmitBatch(events, result, &context));
  if (durability_ != nullptr) [[unlikely]] {
    // Log at submit, ahead of any serve of this batch — the WAL's
    // log→serve order is indifferent to how long the pipeline holds the
    // batch afterwards.
    OBJALLOC_RETURN_IF_ERROR(LogBatch(events));
  }
  context.costs = result->costs.data();
  async_[index] = AsyncBatch{result, context.sequence, /*active=*/true};
  ++async_active_;
  executor_->Submit(index);
  *ticket = BatchTicket{index, context.sequence, /*completed=*/false};
  return util::Status::Ok();
}

template <typename EventT>
util::Status ObjectService::ServeBatchFaultyTail(std::span<const EventT> events,
                                                 BatchResult* result,
                                                 bool parallel) {
  result->served.assign(events.size(), 1);
  live_masks_.resize(events.size());

  // Serial fault pass: one tick of fault time per event. Scripted and random
  // crash/recover events fire here (in admission order — the only order
  // fault time knows), the live set at each event is recorded for the serve
  // pass, and degraded admission runs: an object needing more live
  // processors than exist rejects the whole batch (fault time keeps the
  // consumed window, so a replay meets the recovered world); a crashed
  // issuer refuses just its own event.
  const size_t base_index = injector_->cursor();
  bool reject = false;
  size_t reject_index = 0;
  int reject_live = 0;
  int32_t reject_t = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    fault_buffer_.clear();
    injector_->CollectFaults(live_, &fault_buffer_);
    for (const FaultEvent& fault : fault_buffer_) ApplyFault(fault);
    live_masks_[i] = live_;
    if (reject) continue;  // still ticking fault time for the window
    const uint32_t route = routes_[i];
    const int32_t t = shards_[RouteShard(route)].ThresholdAt(RouteSlot(route));
    if (live_.Size() < t) {
      reject = true;
      reject_index = i;
      reject_live = live_.Size();
      reject_t = t;
    } else if (!live_.Contains(events[i].request.processor)) {
      result->served[i] = 0;
    }
  }
  if (reject) {
    fault_stats_.rejected_batches += 1;
    return util::Status::Unavailable(
        "batch event " + std::to_string(reject_index) + ": only " +
        std::to_string(reject_live) +
        " processor(s) live, object needs t=" + std::to_string(reject_t) +
        "; replay the batch after recovery");
  }

  if (!parallel) {
    for (size_t i = 0; i < events.size(); ++i) {
      if (!result->served[i]) {
        result->costs[i] = 0;
        result->unavailable += 1;
        continue;
      }
      const uint32_t route = routes_[i];
      result->costs[i] = shards_[RouteShard(route)].ServeSlotFaulty(
          RouteSlot(route), events[i].request, base_index + i, live_masks_[i],
          crash_log_, *injector_, &result->breakdown, &fault_stats_,
          check_invariant_);
    }
    fault_stats_.unavailable_requests += result->unavailable;
    result->cost = result->breakdown.Cost(cost_model_);
    return util::Status::Ok();
  }

  // Executor serve, synchronous: the same per-shard partition as the plain
  // path, with per-shard FaultStats scratch merged in fixed shard order
  // (integer counts — exact; repair-latency samples land in shard order, a
  // deterministic multiset). Synchronous because the context points into
  // service scratch (live_masks_, crash_log_) that the next batch recycles;
  // the caller fenced the pipeline before entering the fault tail, so this
  // context is free.
  EnsureExecutor();
  const uint32_t index = executor_->Acquire();
  BatchContext& context = executor_->context(index);
  context.faulty = true;
  context.base_index = base_index;
  context.live_masks = live_masks_.data();
  context.crash_log = &crash_log_;
  context.injector = injector_.get();
  context.check_invariant = check_invariant_;
  for (FaultStats& stats : context.fault_stats) stats = FaultStats();
  for (size_t i = 0; i < events.size(); ++i) {
    if (!result->served[i]) {
      // Refused (issuer crashed): cost 0, no traffic, never enqueued.
      result->costs[i] = 0;
      result->unavailable += 1;
      continue;
    }
    const uint32_t route = routes_[i];
    context.ops[RouteShard(route)].push_back(ShardOp{
        static_cast<uint32_t>(i), RouteSlot(route), events[i].request});
  }
  context.costs = result->costs.data();
  executor_->Submit(index);
  executor_->Wait(index);
  for (size_t s = 0; s < shards_.size(); ++s) {
    result->breakdown += context.deltas[s];
    fault_stats_ += context.fault_stats[s];
  }
  fault_stats_.unavailable_requests += result->unavailable;
  result->cost = result->breakdown.Cost(cost_model_);
  return util::Status::Ok();
}

void ObjectService::ApplyFault(const FaultEvent& event) {
  if (event.crash) {
    if (!live_.Contains(event.processor)) return;  // already crashed: no-op
    live_.Erase(event.processor);
    fault_stats_.crashes += 1;
    // Scheme eviction is lazy (per-object serve timeline, via the log);
    // only the repair registry is fed eagerly.
    crash_log_.push_back(CrashRecord{event.before_event, event.processor});
    for (ObjectShard& shard : shards_) shard.NoteCrash(event.processor);
  } else {
    if (live_.Contains(event.processor)) return;  // already live: no-op
    live_.Insert(event.processor);
    fault_stats_.recoveries += 1;
    // The recovered copy is stale: it rejoins schemes only through traffic
    // (saving-reads, repairs), never implicitly.
  }
}

util::Status ObjectService::EnableFaults(const FaultInjectorOptions& options,
                                         FaultSchedule schedule) {
  // Arming flushes crash history into the schemes and switches every
  // subsequent batch to the synchronous fault engine: quiesce first. While
  // armed, batches are always synchronous, so the fault path itself never
  // races the pipeline.
  FenceAsync();
  OBJALLOC_RETURN_IF_ERROR(options.Validate(num_processors_));
  OBJALLOC_RETURN_IF_ERROR(
      FaultInjector::ValidateSchedule(schedule, num_processors_));
  for (const ObjectShard& shard : shards_) {
    if (shard.HasFallbackObjects()) {
      return util::Status::FailedPrecondition(
          "fault injection supports only the inlined algorithm kinds "
          "(static, dynamic); a registered object uses a fallback");
    }
  }
  if (durability_ != nullptr) [[unlikely]] {
    // All validation passed; from here the arm cannot fail, so the record
    // is safe to write ahead (before `schedule` is moved away).
    std::string payload;
    EncodeEnableFaults(options, schedule, &payload);
    OBJALLOC_RETURN_IF_ERROR(LogOp(WalRecordType::kEnableFaults, payload));
  }
  // Apply any crash history a previous fault session left pending, so the
  // new session starts from schemes consistent with everything that was
  // ever applied, then restart the log and the per-slot positions.
  for (ObjectShard& shard : shards_) shard.FlushCrashLog(crash_log_);
  crash_log_.clear();
  injector_ = std::make_unique<FaultInjector>(num_processors_, options,
                                              std::move(schedule));
  live_ = ProcessorSet::FirstN(num_processors_);
  fault_stats_ = FaultStats();
  return util::Status::Ok();
}

void ObjectService::DisableFaults() {
  if (durability_ != nullptr) [[unlikely]] {
    // Best effort: an append failure detaches durability (the on-disk state
    // stays a consistent prefix); the disable itself always proceeds.
    (void)LogOp(WalRecordType::kDisableFaults, {});
  }
  for (ObjectShard& shard : shards_) shard.FlushCrashLog(crash_log_);
  crash_log_.clear();
  injector_.reset();
  live_ = ProcessorSet::FirstN(num_processors_);
}

util::Status ObjectService::Crash(ProcessorId p) {
  if (injector_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault mode not enabled (EnableFaults first)");
  }
  if (p < 0 || p >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  if (durability_ != nullptr) [[unlikely]] {
    std::string payload;
    EncodeProcessor(p, &payload);
    OBJALLOC_RETURN_IF_ERROR(LogOp(WalRecordType::kCrash, payload));
  }
  // Stamped at "now": events already served keep the member; every later
  // event evicts it via the log.
  ApplyFault(FaultEvent::Crash(injector_->cursor(), p));
  return util::Status::Ok();
}

util::Status ObjectService::Recover(ProcessorId p) {
  if (injector_ == nullptr) {
    return util::Status::FailedPrecondition(
        "fault mode not enabled (EnableFaults first)");
  }
  if (p < 0 || p >= num_processors_) {
    return util::Status::OutOfRange("processor out of range");
  }
  if (durability_ != nullptr) [[unlikely]] {
    std::string payload;
    EncodeProcessor(p, &payload);
    OBJALLOC_RETURN_IF_ERROR(LogOp(WalRecordType::kRecover, payload));
  }
  ApplyFault(FaultEvent::Recover(0, p));
  return util::Status::Ok();
}

int64_t ObjectService::RepairDegraded() {
  if (injector_ == nullptr) return 0;
  if (durability_ != nullptr) [[unlikely]] {
    // Best effort, as in DisableFaults: an append failure detaches
    // durability but never blocks the repair.
    (void)LogOp(WalRecordType::kRepairDegraded, {});
  }
  int64_t added = 0;
  const size_t index = injector_->cursor();  // repairs happen at "now"
  for (ObjectShard& shard : shards_) {
    added += shard.RepairAllDegraded(live_, index, crash_log_, *injector_,
                                     &fault_stats_, check_invariant_);
  }
  return added;
}

size_t ObjectService::degraded_count() const {
  size_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.degraded_count();
  return total;
}

util::Status ObjectService::ServeBatchInto(
    std::span<const workload::MultiObjectEvent> events, BatchResult* result) {
  return ServeBatchImpl(events, result);
}

util::Status ObjectService::ServeBatchInto(std::span<const HandleEvent> events,
                                           BatchResult* result) {
  return ServeBatchImpl(events, result);
}

util::StatusOr<BatchResult> ObjectService::ServeBatch(
    std::span<const workload::MultiObjectEvent> events) {
  BatchResult result;
  util::Status status = ServeBatchImpl(events, &result);
  if (!status.ok()) return status;
  return result;
}

util::StatusOr<BatchResult> ObjectService::ServeBatch(
    std::span<const HandleEvent> events) {
  BatchResult result;
  util::Status status = ServeBatchImpl(events, &result);
  if (!status.ok()) return status;
  return result;
}

util::Status ObjectService::SubmitBatch(
    std::span<const workload::MultiObjectEvent> events, BatchResult* result,
    BatchTicket* ticket) {
  return SubmitBatchImpl(events, result, ticket);
}

util::Status ObjectService::SubmitBatch(std::span<const HandleEvent> events,
                                        BatchResult* result,
                                        BatchTicket* ticket) {
  return SubmitBatchImpl(events, result, ticket);
}

util::Status ObjectService::WaitBatch(BatchTicket* ticket) {
  if (ticket->completed) return util::Status::Ok();
  ticket->completed = true;
  if (executor_ == nullptr || ticket->context >= async_.size()) {
    return util::Status::Ok();
  }
  const AsyncBatch& batch = async_[ticket->context];
  if (!batch.active || batch.sequence != ticket->sequence) {
    // Already finalized — by a drain, a fence, or a later submit reusing
    // the slot. The result was made final then.
    return util::Status::Ok();
  }
  executor_->Wait(ticket->context);
  MergeAsync(ticket->context);
  return FinishBatch();
}

util::Status ObjectService::DrainBatches() {
  FenceAsync();
  return FinishBatch();
}

util::StatusOr<StreamResult> ObjectService::ServeStream(
    workload::EventSource& source, size_t batch_size) {
  if (batch_size == 0) [[unlikely]] {
    return util::Status::InvalidArgument("batch_size must be positive");
  }
  // One buffer, recycled for the whole stream: SubmitBatch copies every
  // event it needs at admission, so the buffer can be refilled while the
  // previous batch is still in flight. Results and tickets are doubled —
  // the one thing that must stay untouched until WaitBatch is the result a
  // pipelined batch writes into. The loop body is allocation-free in
  // steady state.
  std::vector<workload::MultiObjectEvent> buffer(batch_size);
  BatchResult batches[2];
  BatchTicket tickets[2];
  StreamResult result;
  int cur = 0;
  auto accumulate = [&result](const BatchResult& batch) {
    result.breakdown += batch.breakdown;
    result.unavailable += batch.unavailable;
  };
  auto fail = [this](util::Status status) -> util::Status {
    // Leave the service quiescent; events of earlier batches stay served.
    (void)DrainBatches();
    return status;
  };
  while (true) {
    auto filled = source.FillBatch(buffer);
    if (!filled.ok()) return fail(filled.status());
    if (*filled == 0) break;
    if (!tickets[cur].completed) {
      util::Status status = WaitBatch(&tickets[cur]);
      if (!status.ok()) return fail(status);
      accumulate(batches[cur]);
    }
    util::Status status = SubmitBatch(
        std::span<const workload::MultiObjectEvent>(buffer.data(), *filled),
        &batches[cur], &tickets[cur]);
    if (!status.ok()) return fail(status);
    result.events += static_cast<int64_t>(*filled);
    result.batches += 1;
    if (tickets[cur].completed) {
      accumulate(batches[cur]);  // synchronous path: final already
    } else {
      cur ^= 1;  // pipelined: flip so batch n+1 overlaps batch n
    }
  }
  for (int i = 0; i < 2; ++i) {
    if (tickets[i].completed) continue;
    util::Status status = WaitBatch(&tickets[i]);
    if (!status.ok()) return fail(status);
    accumulate(batches[i]);
  }
  result.cost = result.breakdown.Cost(cost_model_);
  return result;
}

util::StatusOr<ObjectStats> ObjectService::StatsFor(ObjectId id) const {
  FenceAsync();  // per-object accounting is serve-mutated state
  const uint32_t route = route_directory_.Find(id);
  if (route == util::FlatDirectory<uint32_t>::kNotFound) {
    return util::Status::NotFound("unknown object " + std::to_string(id));
  }
  return shards_[RouteShard(route)].StatsAt(RouteSlot(route));
}

model::CostBreakdown ObjectService::TotalBreakdown() const {
  FenceAsync();
  model::CostBreakdown total;
  for (const ObjectShard& shard : shards_) total += shard.TotalBreakdown();
  return total;
}

int64_t ObjectService::TotalRequests() const {
  FenceAsync();
  int64_t total = 0;
  for (const ObjectShard& shard : shards_) total += shard.TotalRequests();
  return total;
}

std::vector<ObjectId> ObjectService::SortedObjectIds() const {
  std::vector<ObjectId> ids;
  ids.reserve(object_count());
  for (const ObjectShard& shard : shards_) {
    std::vector<ObjectId> shard_ids = shard.SortedObjectIds();
    ids.insert(ids.end(), shard_ids.begin(), shard_ids.end());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

// --- Durability ---------------------------------------------------------

namespace {

AsyncWalOptions AsyncWalOptionsFrom(const DurabilityOptions& options) {
  AsyncWalOptions out;
  out.group_commit_delay_us = options.group_commit_delay_us;
  out.group_commit_bytes = options.group_commit_bytes;
  out.sync_mode = options.sync_mode;
  out.retry = options.retry;
  return out;
}

}  // namespace

util::Status ObjectService::EnterDegraded(util::Status status) {
  Durability& d = *durability_;
  if (d.state == DurabilityState::kDegraded) return d.degraded_error;
  d.state = DurabilityState::kDegraded;
  d.degraded_error = status;
  // Join the log thread; the writer object stays alive so its final commit
  // stats (and the original sticky error) remain readable until reattach.
  if (d.wal != nullptr) (void)d.wal->Detach();
  return status;
}

template <typename EventT>
util::Status ObjectService::LogBatch(std::span<const EventT> events) {
  Durability& d = *durability_;
  if (d.state != DurabilityState::kDurable) [[unlikely]] {
    // Degraded: the disk is gone but the service is not. Serve the batch
    // undurably; the reattach checkpoint will capture its effects.
    ++d.degraded_batches;
    return util::Status::Ok();
  }
  uint64_t lsn = 0;
  if constexpr (std::is_same_v<EventT, workload::MultiObjectEvent>) {
    lsn = d.wal->AppendBatch(events);
  } else {
    // Handle-addressed events log id-addressed: the two entry points are
    // bit-identical, so replay through the id path reproduces the state.
    d.batch_scratch.clear();
    d.batch_scratch.reserve(events.size());
    for (const EventT& event : events) {
      d.batch_scratch.push_back(
          workload::MultiObjectEvent{event.handle.id, event.request});
    }
    lsn = d.wal->AppendBatch(d.batch_scratch);
  }
  // The append itself is in-memory and cannot fail; I/O errors are sticky
  // inside the writer (after its own rollback-and-rewrite retry gave up).
  // sync_every_batch waits the record out (memory and disk never diverge);
  // the default mode only probes for a sticky error so a dead disk is
  // noticed within one batch rather than at the next sync.
  util::Status status = util::Status::Ok();
  if (d.options.sync_every_batch) {
    status = d.wal->WaitDurable(lsn);
  } else if (!d.wal->is_open()) [[unlikely]] {
    status = d.wal->Detach();
    if (status.ok()) status = util::Status::Internal("WAL writer closed");
  }
  if (!status.ok()) {
    // Degrade, don't stop: the writer already rolled the file back to the
    // last durable group boundary, so the on-disk state is a consistent
    // prefix. The batch is served undurably.
    (void)EnterDegraded(status);
    ++d.degraded_batches;
    return util::Status::Ok();
  }
  d.events_since_checkpoint += events.size();
  return util::Status::Ok();
}

util::Status ObjectService::LogOp(WalRecordType type,
                                  std::string_view payload) {
  Durability& d = *durability_;
  if (d.state != DurabilityState::kDurable) [[unlikely]] {
    return util::Status::Ok();  // applies in memory; reattach captures it
  }
  const uint64_t lsn = d.wal->Append(type, payload);
  util::Status status = util::Status::Ok();
  if (d.options.sync_every_batch) {
    status = d.wal->WaitDurable(lsn);
  } else if (!d.wal->is_open()) [[unlikely]] {
    status = d.wal->Detach();
    if (status.ok()) status = util::Status::Internal("WAL writer closed");
  }
  if (!status.ok()) (void)EnterDegraded(status);
  return util::Status::Ok();
}

util::Status ObjectService::LogSingle(ObjectId id, const Request& request) {
  durability_->batch_scratch.assign(1,
                                    workload::MultiObjectEvent{id, request});
  return LogBatch(std::span<const workload::MultiObjectEvent>(
      durability_->batch_scratch.data(), 1));
}

util::Status ObjectService::FinishBatchDurable() {
  Durability& d = *durability_;
  if (d.state != DurabilityState::kDurable) [[unlikely]] {
    return util::Status::Ok();  // no auto-checkpoints while degraded
  }
  if (d.options.checkpoint_interval_events > 0 &&
      d.events_since_checkpoint >= d.options.checkpoint_interval_events) {
    util::Status status = Checkpoint();
    if (!status.ok() && d.state == DurabilityState::kDegraded) {
      // The auto-checkpoint degraded the service, but the batch that
      // triggered it was served (and logged) fine — don't fail it; the
      // degradation is reported through Stats / the next explicit call.
      return util::Status::Ok();
    }
    return status;
  }
  return util::Status::Ok();
}

ServiceStateImage ObjectService::CaptureServiceState() const {
  ServiceStateImage image;
  image.faults_enabled = injector_ != nullptr;
  if (injector_ != nullptr) {
    image.injector_options = injector_->options();
    image.schedule = injector_->schedule();
    image.injector_cursor = injector_->cursor();
  }
  image.live_mask = live_.mask();
  image.crash_log = crash_log_;
  image.stats = fault_stats_;
  return image;
}

util::Status ObjectService::RestoreServiceState(
    const ServiceStateImage& image) {
  const ProcessorSet world = ProcessorSet::FirstN(num_processors_);
  live_ = ProcessorSet(image.live_mask);
  if (!live_.IsSubsetOf(world)) {
    return util::Status::Internal("service state: live set out of range");
  }
  size_t last = 0;
  for (const CrashRecord& record : image.crash_log) {
    if (record.processor < 0 || record.processor >= num_processors_ ||
        record.index < last) {
      return util::Status::Internal("service state: malformed crash log");
    }
    last = record.index;
  }
  crash_log_ = image.crash_log;
  fault_stats_ = image.stats;
  if (image.faults_enabled) {
    OBJALLOC_RETURN_IF_ERROR(
        image.injector_options.Validate(num_processors_));
    OBJALLOC_RETURN_IF_ERROR(
        FaultInjector::ValidateSchedule(image.schedule, num_processors_));
    injector_ = std::make_unique<FaultInjector>(
        num_processors_, image.injector_options, image.schedule);
    injector_->FastForward(static_cast<size_t>(image.injector_cursor));
  } else {
    injector_.reset();
  }
  return util::Status::Ok();
}

util::Status ObjectService::WriteCheckpointFile(const std::string& path,
                                                uint64_t sequence) const {
  auto writer = CheckpointWriter::Open(path, sequence, durability_->config);
  if (!writer.ok()) return writer.status();
  OBJALLOC_RETURN_IF_ERROR(writer->AppendServiceState(CaptureServiceState()));
  // Slot records stream out one slab page at a time; the scratch buffer
  // and the writer's chunk buffer bound peak memory regardless of how many
  // objects the shards hold.
  constexpr uint32_t kSlotsPerAppend = 2048;
  std::string scratch;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ObjectShard& shard = shards_[s];
    writer->BeginShard(static_cast<uint32_t>(s));
    scratch.clear();
    shard.AppendSnapshotHeader(&scratch);
    OBJALLOC_RETURN_IF_ERROR(writer->AppendShardBytes(scratch));
    const uint32_t span = shard.slot_span();
    for (uint32_t begin = 0; begin < span; begin += kSlotsPerAppend) {
      scratch.clear();
      shard.AppendSnapshotSlots(begin, std::min(span, begin + kSlotsPerAppend),
                                &scratch);
      OBJALLOC_RETURN_IF_ERROR(writer->AppendShardBytes(scratch));
    }
    scratch.clear();
    shard.AppendSnapshotFooter(&scratch);
    OBJALLOC_RETURN_IF_ERROR(writer->AppendShardBytes(scratch));
    OBJALLOC_RETURN_IF_ERROR(writer->EndShard());
  }
  return writer->Finish(static_cast<uint32_t>(shards_.size()));
}

util::Status ObjectService::WriteDeltaCheckpointFile(const std::string& path,
                                                     uint64_t sequence) const {
  auto writer = CheckpointWriter::OpenDelta(path, sequence, sequence - 1,
                                            durability_->config);
  if (!writer.ok()) return writer.status();
  OBJALLOC_RETURN_IF_ERROR(writer->AppendServiceState(CaptureServiceState()));
  // Dirty ranges are split into bounded pieces so the scratch buffer (not
  // the dirty span) caps peak memory, exactly like the full-snapshot path.
  constexpr uint32_t kSlotsPerAppend = 2048;
  std::string scratch;
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  std::vector<std::pair<uint32_t, uint32_t>> pieces;
  for (size_t s = 0; s < shards_.size(); ++s) {
    const ObjectShard& shard = shards_[s];
    writer->BeginShard(static_cast<uint32_t>(s));
    shard.CollectDirtyRanges(&ranges);
    pieces.clear();
    for (const auto& [begin, end] : ranges) {
      // 64-bit cursor: begin + kSlotsPerAppend could wrap at the top of
      // the 32-bit slot space.
      for (uint64_t piece = begin; piece < end; piece += kSlotsPerAppend) {
        pieces.emplace_back(
            static_cast<uint32_t>(piece),
            static_cast<uint32_t>(
                std::min<uint64_t>(end, piece + kSlotsPerAppend)));
      }
    }
    scratch.clear();
    shard.AppendDeltaHeader(static_cast<uint32_t>(pieces.size()), &scratch);
    OBJALLOC_RETURN_IF_ERROR(writer->AppendShardBytes(scratch));
    for (const auto& [begin, end] : pieces) {
      scratch.clear();
      shard.AppendDeltaRange(begin, end, &scratch);
      OBJALLOC_RETURN_IF_ERROR(writer->AppendShardBytes(scratch));
    }
    scratch.clear();
    shard.AppendSnapshotFooter(&scratch);
    OBJALLOC_RETURN_IF_ERROR(writer->AppendShardBytes(scratch));
    OBJALLOC_RETURN_IF_ERROR(writer->EndShard());
  }
  return writer->Finish(static_cast<uint32_t>(shards_.size()));
}

util::Status ObjectService::EnableDurability(const std::string& dir,
                                             const DurabilityOptions& options) {
  if (durability_ != nullptr) {
    return util::Status::FailedPrecondition("durability already enabled");
  }
  FenceAsync();  // the generation-1 snapshot reads every shard
  OBJALLOC_RETURN_IF_ERROR(options.Validate());
  for (const ObjectShard& shard : shards_) {
    if (shard.HasFallbackObjects()) {
      return util::Status::FailedPrecondition(
          "durability supports only the inlined algorithm kinds (static, "
          "dynamic); a registered object uses a fallback");
    }
  }
  OBJALLOC_RETURN_IF_ERROR(util::EnsureDir(dir));
  // This call *starts* a durable history; durable files left by a previous
  // incarnation (including their temp files) are removed so a manifest-less
  // scan can never resurrect them.
  auto names = util::ListDir(dir);
  if (!names.ok()) return names.status();
  for (const std::string& name : *names) {
    if (name.rfind(kManifestFileName, 0) == 0 ||
        name.rfind("checkpoint-", 0) == 0 || name.rfind("wal-", 0) == 0) {
      OBJALLOC_RETURN_IF_ERROR(util::RemoveFile(dir + "/" + name));
    }
  }
  auto d = std::make_unique<Durability>();
  d->dir = dir;
  d->options = options;
  d->config =
      DurableConfig{num_processors_, static_cast<int32_t>(shards_.size()),
                    cost_model_};
  d->sequence = 1;
  d->base_sequence = 1;
  durability_ = std::move(d);
  // Generation 1: a snapshot of the current state (empty service or one
  // mid-life — both are just states) + a fresh WAL + the manifest. Each
  // step retries transient IO failures; a persistent failure here is a
  // clean error (durability never armed), not a degradation.
  util::Env* env = util::CurrentEnv();
  uint64_t* retries = &durability_->checkpoint_retries;
  util::Status status = util::RetryIo(options.retry, env, retries, [&] {
    return WriteCheckpointFile(durability_->dir + "/" + CheckpointFileName(1),
                               1);
  });
  if (status.ok()) {
    util::StatusOr<WalWriter> wal{util::Status::Internal("unattempted")};
    status = util::RetryIo(options.retry, env, retries, [&] {
      wal = WalWriter::Create(durability_->dir + "/" + WalFileName(1), 1,
                              durability_->config);
      return wal.status();
    });
    if (status.ok()) {
      durability_->wal = std::make_unique<AsyncWalWriter>();
      status = durability_->wal->Attach(std::move(*wal),
                                        AsyncWalOptionsFrom(options));
      if (status.ok()) {
        status = util::RetryIo(options.retry, env, retries, [&] {
          return WriteManifest(durability_->dir,
                               Manifest{1, 1, durability_->config});
        });
      }
    }
  }
  if (!status.ok()) {
    durability_.reset();
    return status;
  }
  // Delta checkpoints need to know which slab pages each checkpoint window
  // dirties; the generation-1 snapshot is full, so the slate starts clean.
  for (ObjectShard& shard : shards_) {
    if (options.delta_chain_limit > 0) {
      shard.EnableDirtyTracking();
      shard.ClearDirty();
    } else {
      shard.DisableDirtyTracking();
    }
  }
  return util::Status::Ok();
}

util::Status ObjectService::DisableDurability() {
  if (durability_ == nullptr) {
    return util::Status::FailedPrecondition("durability not enabled");
  }
  // A degraded detach reports the degrading error — the caller learns that
  // a tail of history never reached disk — but detaches either way.
  util::Status status = durability_->state == DurabilityState::kDegraded
                            ? durability_->degraded_error
                            : durability_->wal->Detach();
  durability_.reset();
  return status;
}

util::Status ObjectService::SyncDurable() {
  if (durability_ == nullptr) {
    return util::Status::FailedPrecondition("durability not enabled");
  }
  if (durability_->state == DurabilityState::kDegraded) {
    return durability_->degraded_error;
  }
  util::Status status = durability_->wal->Flush();
  if (!status.ok()) return EnterDegraded(status);
  return status;
}

WalCommitStats ObjectService::DurableCommitStats() const {
  if (durability_ == nullptr || durability_->wal == nullptr) {
    return WalCommitStats();
  }
  return durability_->wal->Stats();
}

util::Status ObjectService::Checkpoint() {
  if (durability_ == nullptr) {
    return util::Status::FailedPrecondition("durability not enabled");
  }
  // Snapshot quiescence: every in-flight batch must be fully applied (and
  // merged) before the shards are serialized — a checkpoint reached from
  // WaitBatch's auto-checkpoint hook may find later pipelined batches
  // still running.
  FenceAsync();
  Durability& d = *durability_;
  if (d.state == DurabilityState::kDegraded) {
    return d.degraded_error;
  }
  // (1) Everything the snapshot will contain must be durable under the old
  //     generation first: state(ckpt g+1) == state(ckpt g) + replay(wal-g)
  //     only holds if wal-g is complete on disk.
  util::Status status = d.wal->Flush();
  if (!status.ok()) {
    return EnterDegraded(status);
  }
  const uint64_t next = d.sequence + 1;
  // Delta while the chain has room, full once it hits the limit (the
  // periodic compaction that keeps recovery cost bounded).
  const bool delta = d.options.delta_chain_limit > 0 &&
                     d.delta_chain_length < d.options.delta_chain_limit;
  const std::string ckpt_path =
      d.dir + "/" +
      (delta ? DeltaCheckpointFileName(next) : CheckpointFileName(next));
  const std::string wal_path = d.dir + "/" + WalFileName(next);
  util::Env* env = util::CurrentEnv();
  // (2) The snapshot, streamed to a temp file and atomically published
  //     under its final name. Safe to retry whole: the temp file is
  //     recreated from scratch each attempt.
  status = util::RetryIo(d.options.retry, env, &d.checkpoint_retries, [&] {
    return delta ? WriteDeltaCheckpointFile(ckpt_path, next)
                 : WriteCheckpointFile(ckpt_path, next);
  });
  // (3) The next generation's WAL with a synced header — it must exist
  //     before the manifest can name it. Create truncates, so a retry
  //     rewrites the header cleanly.
  util::StatusOr<WalWriter> wal{status.ok()
                                    ? util::Status::Internal("unattempted")
                                    : status};
  if (status.ok()) {
    status = util::RetryIo(d.options.retry, env, &d.checkpoint_retries, [&] {
      wal = WalWriter::Create(wal_path, next, d.config);
      return wal.status();
    });
  }
  // (4) Commit point: the manifest flips to the new generation (and names
  //     the full snapshot its delta chain stands on).
  if (wal.ok()) {
    status = util::RetryIo(d.options.retry, env, &d.checkpoint_retries, [&] {
      return WriteManifest(
          d.dir, Manifest{next, delta ? d.base_sequence : next, d.config});
    });
  }
  if (!status.ok()) {
    // Roll back the orphans so a manifest-less recovery scan cannot pick a
    // generation whose WAL chain never went live. The current generation
    // stays fully intact and appendable — but the disk just refused a
    // persistent write, so the service degrades rather than pretending the
    // next interval will fare better.
    (void)util::RemoveFile(ckpt_path);
    (void)util::RemoveFile(wal_path);
    return EnterDegraded(status);
  }
  status = d.wal->Rotate(std::move(*wal));
  if (!status.ok()) {
    return EnterDegraded(status);
  }
  d.sequence = next;
  d.events_since_checkpoint = 0;
  if (delta) {
    d.delta_chain_length += 1;
  } else {
    d.base_sequence = next;
    d.delta_chain_length = 0;
  }
  // The published snapshot covers every page dirtied so far; the next
  // delta window starts clean. (Only after the manifest commit — a failed
  // checkpoint must leave the pages marked for the retry.)
  if (d.options.delta_chain_limit > 0) {
    for (ObjectShard& shard : shards_) shard.ClearDirty();
  }
  // (5) GC, best effort: drop generations beyond keep_generations (walking
  //     down until the names stop existing catches backlogs left by
  //     earlier failed GCs). WALs fall at keep_generations exactly;
  //     snapshot files survive further down to the full snapshot the
  //     oldest kept generation's delta chain stands on.
  if (next > static_cast<uint64_t>(d.options.keep_generations)) {
    const uint64_t wal_floor =
        next - static_cast<uint64_t>(d.options.keep_generations);
    uint64_t ckpt_floor = wal_floor + 1;
    while (ckpt_floor > 1 &&
           !util::FileExists(d.dir + "/" + CheckpointFileName(ckpt_floor))) {
      --ckpt_floor;
    }
    for (uint64_t gen = wal_floor;; --gen) {
      const std::string wal_name = d.dir + "/" + WalFileName(gen);
      const std::string full_name = d.dir + "/" + CheckpointFileName(gen);
      const std::string delta_name = d.dir + "/" + DeltaCheckpointFileName(gen);
      bool had_files = util::FileExists(wal_name) ||
                       util::FileExists(full_name) ||
                       util::FileExists(delta_name);
      (void)util::RemoveFile(wal_name);
      if (gen < ckpt_floor) {
        (void)util::RemoveFile(full_name);
        (void)util::RemoveFile(delta_name);
      }
      if (!had_files || gen == 1) break;
    }
  }
  return util::Status::Ok();
}

util::Status ObjectService::ReattachDurability() {
  if (durability_ == nullptr) {
    return util::Status::FailedPrecondition("durability not enabled");
  }
  Durability& d = *durability_;
  if (d.state != DurabilityState::kDegraded) {
    return util::Status::FailedPrecondition(
        "durability is healthy — nothing to reattach");
  }
  // The fresh checkpoint reads every shard; quiesce first.
  FenceAsync();
  // The old writer is already detached (EnterDegraded joined its thread);
  // fold its retry count into the service totals and release it.
  if (d.wal != nullptr) {
    d.wal_retries_detached += d.wal->Stats().write_retries;
    d.wal.reset();
  }
  // Quarantine the failed generation's WAL: its durable prefix is real
  // history, but the new checkpoint supersedes it and it must never be
  // picked up by a manifest-less recovery scan. Renamed, not deleted —
  // forensics beat free disk blocks right after a disk scare. NotFound is
  // fine (the failure may have struck before the file ever existed).
  const std::string failed_wal = d.dir + "/" + WalFileName(d.sequence);
  util::Status status =
      util::RenameFile(failed_wal, failed_wal + ".quarantine");
  if (!status.ok() && status.code() != util::StatusCode::kNotFound) {
    d.degraded_error = status;
    return status;
  }
  // Fresh full generation g+1 capturing the *current* in-memory state —
  // including every batch served while degraded — then the manifest commit
  // names it as both the live generation and the full-snapshot base.
  const uint64_t next = d.sequence + 1;
  const std::string ckpt_path = d.dir + "/" + CheckpointFileName(next);
  const std::string wal_path = d.dir + "/" + WalFileName(next);
  util::Env* env = util::CurrentEnv();
  status = util::RetryIo(d.options.retry, env, &d.checkpoint_retries, [&] {
    return WriteCheckpointFile(ckpt_path, next);
  });
  util::StatusOr<WalWriter> wal{status.ok()
                                    ? util::Status::Internal("unattempted")
                                    : status};
  if (status.ok()) {
    status = util::RetryIo(d.options.retry, env, &d.checkpoint_retries, [&] {
      wal = WalWriter::Create(wal_path, next, d.config);
      return wal.status();
    });
  }
  if (wal.ok()) {
    status = util::RetryIo(d.options.retry, env, &d.checkpoint_retries, [&] {
      return WriteManifest(d.dir, Manifest{next, next, d.config});
    });
  }
  if (status.ok()) {
    d.wal = std::make_unique<AsyncWalWriter>();
    status = d.wal->Attach(std::move(*wal), AsyncWalOptionsFrom(d.options));
    if (!status.ok()) d.wal.reset();
  }
  if (!status.ok()) {
    // Still degraded, now holding the reattach failure; the caller can try
    // again once the disk truly heals.
    (void)util::RemoveFile(ckpt_path);
    (void)util::RemoveFile(wal_path);
    d.degraded_error = status;
    return status;
  }
  d.sequence = next;
  d.base_sequence = next;
  d.delta_chain_length = 0;
  d.events_since_checkpoint = 0;
  d.state = DurabilityState::kDurable;
  d.degraded_error = util::Status::Ok();
  ++d.reattach_count;
  // The published snapshot is full; the next delta window starts clean.
  if (d.options.delta_chain_limit > 0) {
    for (ObjectShard& shard : shards_) {
      shard.EnableDirtyTracking();
      shard.ClearDirty();
    }
  }
  if (d.options.verify_reattach) {
    // Verifiable resync: prove the healed directory actually recovers
    // before reporting success. A failure here means the disk is still
    // lying (reads don't match writes) — degrade again.
    RecoveryReport report;
    util::Status verify = VerifyDurableDir(d.dir, &report);
    if (!verify.ok()) return EnterDegraded(verify);
  }
  return util::Status::Ok();
}

ServiceLoad ObjectService::Load() const {
  ServiceLoad load;
  if (executor_ != nullptr) {
    load.executor_queued_ops = executor_->QueuedOps();
    load.inflight_batches = executor_->InflightBatches();
  }
  if (durability_ != nullptr) {
    load.durability = durability_->state;
    if (durability_->wal != nullptr &&
        durability_->state == DurabilityState::kDurable) {
      load.wal_backlog_bytes = durability_->wal->BacklogBytes();
    }
  }
  return load;
}

ServiceStats ObjectService::Stats() const {
  ServiceLoad load = Load();
  FenceAsync();
  ServiceStats stats;
  stats.load = load;
  stats.objects = object_count();
  stats.total_requests = TotalRequests();
  stats.total_breakdown = TotalBreakdown();
  if (durability_ != nullptr) {
    const Durability& d = *durability_;
    stats.durability = d.state;
    stats.durability_error = d.degraded_error;
    stats.checkpoint_retries = d.checkpoint_retries;
    stats.degraded_batches = d.degraded_batches;
    stats.reattach_count = d.reattach_count;
    stats.wal_write_retries = d.wal_retries_detached;
    if (d.wal != nullptr) {
      stats.commit = d.wal->Stats();
      stats.wal_write_retries += stats.commit.write_retries;
    }
  }
  return stats;
}

namespace {

// Generic framing + CRC walk shared by the scrub's WAL and checkpoint
// passes (semantic validation is the recovery dry run's job).
void ScrubRecordFile(const std::string& path, bool torn_tail_legal,
                     ScrubFileReport* file) {
  auto bytes = util::ReadFileToString(path);
  if (!bytes.ok()) {
    file->verdict = ScrubVerdict::kCorrupt;
    file->detail = bytes.status().ToString();
    return;
  }
  file->bytes = bytes->size();
  util::RecordCursor cursor(*bytes);
  util::RecordView record;
  bool first = true;
  while (cursor.Next(&record)) {
    if (first && file->name.rfind("wal-", 0) == 0) {
      // The WAL's first record must be its header; a checkpoint's
      // structure is enforced by the recovery dry run.
      if (record.type != static_cast<uint8_t>(WalRecordType::kWalHeader) ||
          !DecodeWalHeader(record.payload).ok()) {
        file->verdict = ScrubVerdict::kCorrupt;
        file->detail = "first record is not a valid WAL header";
        return;
      }
    }
    first = false;
    ++file->records;
  }
  if (!cursor.status().ok()) {
    file->verdict = ScrubVerdict::kCorrupt;
    file->detail = cursor.status().ToString();
  } else if (cursor.tail_bytes() > 0) {
    if (torn_tail_legal) {
      file->verdict = ScrubVerdict::kTornTail;
      file->detail = std::to_string(cursor.tail_bytes()) +
                     " torn tail byte(s) past the valid prefix";
    } else {
      file->verdict = ScrubVerdict::kCorrupt;
      file->detail = "truncated mid-record (checkpoints publish atomically)";
    }
  }
}

}  // namespace

util::Status ObjectService::Scrub(const std::string& dir,
                                  ScrubReport* report) {
  *report = ScrubReport();
  auto names = util::ListDir(dir);
  if (!names.ok()) return names.status();
  std::sort(names->begin(), names->end());
  for (const std::string& name : *names) {
    ScrubFileReport file;
    file.name = name;
    const std::string path = dir + "/" + name;
    if (auto size = util::FileSize(path); size.ok()) file.bytes = *size;
    if (name == kManifestFileName) {
      auto manifest = ReadManifest(dir);
      if (manifest.ok()) {
        file.records = 1;
        file.detail = "generation " + std::to_string(manifest->sequence) +
                      ", base " + std::to_string(manifest->base_sequence);
      } else {
        file.verdict = ScrubVerdict::kCorrupt;
        file.detail = manifest.status().ToString();
      }
    } else if (name.ends_with(".quarantine")) {
      file.verdict = ScrubVerdict::kQuarantined;
      file.detail = "failed generation set aside by reattach (not replayed)";
    } else if (name.ends_with(".tmp")) {
      file.verdict = ScrubVerdict::kStray;
      file.detail = "abandoned temp file (an interrupted atomic publish)";
    } else if (name.rfind("checkpoint-", 0) == 0) {
      ScrubRecordFile(path, /*torn_tail_legal=*/false, &file);
    } else if (name.rfind("wal-", 0) == 0 && name.ends_with(".log")) {
      ScrubRecordFile(path, /*torn_tail_legal=*/true, &file);
    } else {
      file.verdict = ScrubVerdict::kStray;
      file.detail = "not a durability-layer file";
    }
    report->files.push_back(std::move(file));
  }
  // The semantic pass: would Recover succeed, and what would it do?
  util::Status status = VerifyDurableDir(dir, &report->recovery);
  report->recoverable = status.ok();
  bool files_ok = true;
  for (const ScrubFileReport& file : report->files) {
    files_ok = files_ok && file.verdict == ScrubVerdict::kOk;
  }
  report->clean = report->recoverable && files_ok &&
                  !report->recovery.fell_back && !report->recovery.torn_tail &&
                  !report->recovery.manifest_missing &&
                  !report->recovery.manifest_corrupt;
  return status;
}

util::Status ObjectService::RestoreFromCheckpointStream(
    CheckpointReader* reader, RecoveryReport* report) {
  OBJALLOC_CHECK_EQ(static_cast<size_t>(reader->config().num_shards),
                    shards_.size());
  if (reader->is_delta()) {
    return util::Status::Internal(
        "checkpoint: delta snapshot where a full snapshot was expected");
  }
  ServiceStateImage state;
  bool saw_state = false;
  CheckpointReader::Piece piece;
  for (;;) {
    OBJALLOC_RETURN_IF_ERROR(reader->Next(&piece));
    if (piece.done) break;
    if (piece.service_state) {
      state = std::move(piece.state);
      saw_state = true;
      continue;
    }
    if (piece.shard >= shards_.size()) {
      return util::Status::Internal("checkpoint: shard index " +
                                    std::to_string(piece.shard) +
                                    " out of range");
    }
    OBJALLOC_RETURN_IF_ERROR(
        shards_[piece.shard].RestoreSnapshotChunk(piece.bytes, piece.last));
  }
  if (!saw_state) {
    return util::Status::Internal("checkpoint: missing service state record");
  }
  // Rebuild the id → route mirror, verifying the partition while at it: an
  // id must live in exactly the shard the hash assigns it, or handles and
  // future AddObject calls would disagree with the restored layout.
  route_directory_.Reserve(object_count());
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (uint32_t slot = 0; slot < shards_[s].slot_span(); ++slot) {
      if (slot > route_slot_mask_ ||
          PackRoute(s, slot) >= 0xFFFFFFFEu) [[unlikely]] {
        return util::Status::Internal(
            "checkpoint: shard " + std::to_string(s) +
            " exceeds the routable slot space");
      }
      const ObjectId id = shards_[s].IdAt(slot);
      if (ShardOf(id) != s) {
        return util::Status::Internal("checkpoint: object " +
                                      std::to_string(id) +
                                      " stored in the wrong shard");
      }
      if (route_directory_.Contains(id)) {
        return util::Status::Internal("checkpoint: object " +
                                      std::to_string(id) +
                                      " appears in two shards");
      }
      route_directory_.Insert(id, PackRoute(s, slot));
    }
  }
  report->objects_restored = object_count();
  return RestoreServiceState(state);
}

util::Status ObjectService::ApplyDeltaCheckpointStream(
    CheckpointReader* reader, RecoveryReport* report) {
  OBJALLOC_CHECK_EQ(static_cast<size_t>(reader->config().num_shards),
                    shards_.size());
  if (!reader->is_delta()) {
    return util::Status::Internal(
        "checkpoint: full snapshot where a delta was expected");
  }
  // Slots never move and ids never change once assigned, so applying a
  // delta only ever *extends* each shard's slot span; the route mirror
  // built by the base restore stays valid and just needs the new slots
  // folded in afterwards.
  std::vector<uint32_t> prior_span(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    prior_span[s] = shards_[s].slot_span();
  }
  ServiceStateImage state;
  bool saw_state = false;
  std::vector<uint8_t> begun(shards_.size(), 0);
  CheckpointReader::Piece piece;
  for (;;) {
    OBJALLOC_RETURN_IF_ERROR(reader->Next(&piece));
    if (piece.done) break;
    if (piece.service_state) {
      state = std::move(piece.state);
      saw_state = true;
      continue;
    }
    if (piece.shard >= shards_.size()) {
      return util::Status::Internal("delta checkpoint: shard index " +
                                    std::to_string(piece.shard) +
                                    " out of range");
    }
    if (!begun[piece.shard]) {
      shards_[piece.shard].BeginDeltaRestore();
      begun[piece.shard] = 1;
    }
    OBJALLOC_RETURN_IF_ERROR(
        shards_[piece.shard].RestoreDeltaChunk(piece.bytes, piece.last));
  }
  if (!saw_state) {
    return util::Status::Internal(
        "delta checkpoint: missing service state record");
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (uint32_t slot = prior_span[s]; slot < shards_[s].slot_span();
         ++slot) {
      if (slot > route_slot_mask_ ||
          PackRoute(s, slot) >= 0xFFFFFFFEu) [[unlikely]] {
        return util::Status::Internal(
            "delta checkpoint: shard " + std::to_string(s) +
            " exceeds the routable slot space");
      }
      const ObjectId id = shards_[s].IdAt(slot);
      if (ShardOf(id) != s) {
        return util::Status::Internal("delta checkpoint: object " +
                                      std::to_string(id) +
                                      " stored in the wrong shard");
      }
      if (route_directory_.Contains(id)) {
        return util::Status::Internal("delta checkpoint: object " +
                                      std::to_string(id) +
                                      " appears twice");
      }
      route_directory_.Insert(id, PackRoute(s, slot));
    }
  }
  report->objects_restored = object_count();
  // The delta's service-state image wins outright: fault state, crash
  // journal, and injector cursor are small and snapshotted whole in every
  // generation, full or delta.
  return RestoreServiceState(state);
}

util::Status ObjectService::ReplayWalBuffer(std::string_view buffer,
                                            uint64_t sequence,
                                            const DurableConfig& config,
                                            bool is_last,
                                            size_t replay_batch_events,
                                            RecoveryReport* report,
                                            size_t* valid_prefix) {
  const std::string name = WalFileName(sequence);
  util::RecordCursor cursor(buffer);
  util::RecordView record;
  bool saw_header = false;
  std::vector<workload::MultiObjectEvent> batch;
  // Logged batches replay through the pipelined engine, double-buffered:
  // batch n+1 is decoded and admitted while batch n is still on the shard
  // workers, so recovering a large log uses every executor thread. Two
  // result slots alternate; a slot is waited out before reuse. To amortize
  // per-batch admission over the original run's (often small) batch sizes,
  // consecutive logged batches are coalesced into super-batches of up to
  // `replay_batch_events` events before submission — legal because batch
  // boundaries are invisible to the engine outside fault mode (per-object
  // order is all that matters, and concatenation preserves it). Coalescing
  // stops dead while the fault injector is armed: there, a batch is the
  // admission/rejection unit. Non-batch records (registrations, fault
  // controls) flush the coalesce buffer and fence the pipeline internally,
  // which keeps replay order exactly the admission order of the original
  // run. The serve outcome is re-derived state — results are write-only.
  BatchResult results[2];
  BatchTicket tickets[2];
  int cur = 0;
  std::vector<workload::MultiObjectEvent> pending;
  auto wait_slot = [&](BatchTicket* ticket) -> util::Status {
    util::Status status = WaitBatch(ticket);
    // UNAVAILABLE is a *replayed rejection* — the original run logged the
    // batch because it consumed fault-time windows; the replay consumes
    // the same windows and rejects identically.
    if (!status.ok() && status.code() != util::StatusCode::kUnavailable) {
      return util::Status::Internal(
          name + ": logged batch failed on replay: " + status.ToString());
    }
    return util::Status::Ok();
  };
  auto submit = [&](std::span<const workload::MultiObjectEvent> events)
      -> util::Status {
    OBJALLOC_RETURN_IF_ERROR(wait_slot(&tickets[cur]));
    util::Status status = SubmitBatch(events, &results[cur], &tickets[cur]);
    if (!status.ok() && status.code() != util::StatusCode::kUnavailable) {
      return util::Status::Internal(
          name + ": logged batch failed on replay: " + status.ToString());
    }
    cur ^= 1;
    return util::Status::Ok();
  };
  auto flush_pending = [&]() -> util::Status {
    if (pending.empty()) return util::Status::Ok();
    util::Status status = submit(pending);
    pending.clear();
    return status;
  };
  util::Status replay_status = [&]() -> util::Status {
  while (cursor.Next(&record)) {
    const WalRecordType type = static_cast<WalRecordType>(record.type);
    if (!saw_header) {
      if (type != WalRecordType::kWalHeader) {
        return util::Status::Internal(name +
                                      ": first record is not a WAL header");
      }
      auto header = DecodeWalHeader(record.payload);
      if (!header.ok()) return header.status();
      if (header->sequence != sequence) {
        return util::Status::Internal(
            name + ": header names generation " +
            std::to_string(header->sequence));
      }
      OBJALLOC_RETURN_IF_ERROR(config.CheckMatches(header->config));
      saw_header = true;
      report->records_replayed += 1;
      continue;
    }
    // Any non-batch record is an ordering point against the events logged
    // before it: submit the coalesce buffer first so e.g. a replayed
    // EnableFaults applies after exactly the events it followed on the
    // original run.
    if (type != WalRecordType::kBatch) {
      OBJALLOC_RETURN_IF_ERROR(flush_pending());
    }
    switch (type) {
      case WalRecordType::kWalHeader:
        return util::Status::Internal(name + ": duplicate header record");
      case WalRecordType::kAddObject: {
        auto decoded = DecodeAddObject(record.payload);
        if (!decoded.ok()) return decoded.status();
        util::Status status = AddObject(decoded->id, decoded->config);
        if (!status.ok()) {
          return util::Status::Internal(
              name + ": logged registration failed on replay: " +
              status.ToString());
        }
        break;
      }
      case WalRecordType::kBatch: {
        OBJALLOC_RETURN_IF_ERROR(DecodeBatch(record.payload, &batch));
        report->batches_replayed += 1;
        report->events_replayed += batch.size();
        if (injector_ != nullptr || replay_batch_events == 0) {
          // Fault mode makes batch boundaries observable (a batch is the
          // rejection unit), so replay each logged batch exactly as
          // admitted. SubmitBatch copies the events; `batch` and `pending`
          // are free to take the next record immediately.
          OBJALLOC_RETURN_IF_ERROR(flush_pending());
          OBJALLOC_RETURN_IF_ERROR(submit(batch));
        } else {
          pending.insert(pending.end(), batch.begin(), batch.end());
          if (pending.size() >= replay_batch_events) {
            OBJALLOC_RETURN_IF_ERROR(flush_pending());
          }
        }
        break;
      }
      case WalRecordType::kEnableFaults: {
        auto decoded = DecodeEnableFaults(record.payload);
        if (!decoded.ok()) return decoded.status();
        util::Status status =
            EnableFaults(decoded->options, std::move(decoded->schedule));
        if (!status.ok()) {
          return util::Status::Internal(
              name + ": logged EnableFaults failed on replay: " +
              status.ToString());
        }
        break;
      }
      case WalRecordType::kDisableFaults:
        DisableFaults();
        break;
      case WalRecordType::kCrash:
      case WalRecordType::kRecover: {
        auto processor = DecodeProcessor(record.payload);
        if (!processor.ok()) return processor.status();
        util::Status status = type == WalRecordType::kCrash
                                  ? Crash(*processor)
                                  : Recover(*processor);
        if (!status.ok()) {
          return util::Status::Internal(
              name + ": logged liveness control failed on replay: " +
              status.ToString());
        }
        break;
      }
      case WalRecordType::kRepairDegraded:
        RepairDegraded();
        break;
      default:
        return util::Status::Internal(name + ": unknown record type " +
                                      std::to_string(record.type));
    }
    report->records_replayed += 1;
  }
  // A CRC failure inside the prefix is corruption, never a torn tail.
  OBJALLOC_RETURN_IF_ERROR(cursor.status());
  if (!saw_header) {
    // Generations get a synced header before the manifest ever names them,
    // so a header-less file in a committed chain is corruption.
    return util::Status::Internal(name + ": no complete header record");
  }
  if (cursor.tail_bytes() > 0) {
    if (!is_last) {
      return util::Status::Internal(
          name + ": torn tail in a non-final generation (" +
          std::to_string(cursor.tail_bytes()) + " bytes) — " +
          "this WAL was synced at checkpoint time and must be complete");
    }
    report->torn_tail = true;
    report->torn_bytes_truncated += cursor.tail_bytes();
  }
  OBJALLOC_RETURN_IF_ERROR(flush_pending());
  *valid_prefix = cursor.valid_prefix();
  return util::Status::Ok();
  }();
  // The in-flight tail still references the local result slots above —
  // fence the pipeline before they go out of scope, whatever the loop
  // decided, and surface a serve-side failure the loop didn't see.
  util::Status tail_a = wait_slot(&tickets[0]);
  util::Status tail_b = wait_slot(&tickets[1]);
  OBJALLOC_RETURN_IF_ERROR(replay_status);
  OBJALLOC_RETURN_IF_ERROR(tail_a);
  return tail_b;
}

util::StatusOr<ObjectService> ObjectService::RecoverInternal(
    const std::string& dir, const DurabilityOptions& options,
    RecoveryReport* report, bool read_only) {
  RecoveryReport local;
  RecoveryReport& rep = report != nullptr ? *report : local;
  rep = RecoveryReport();
  OBJALLOC_RETURN_IF_ERROR(options.Validate());

  // The manifest names the committed generation; when it is unreadable,
  // fall back to scanning the directory for snapshot files (every candidate
  // is still fully CRC-verified before use).
  uint64_t top = 0;
  std::vector<uint64_t> candidates;
  DurableConfig manifest_config;
  bool have_manifest = false;
  auto manifest = ReadManifest(dir);
  if (manifest.ok()) {
    have_manifest = true;
    manifest_config = manifest->config;
    top = manifest->sequence;
    rep.manifest_sequence = top;
    candidates.push_back(top);
    if (top > 1) candidates.push_back(top - 1);
  } else {
    if (manifest.status().code() == util::StatusCode::kNotFound) {
      rep.manifest_missing = true;
    } else {
      rep.manifest_corrupt = true;
    }
    rep.warnings.push_back("manifest unreadable (" +
                           manifest.status().ToString() +
                           "); scanning the directory");
    // Deltas count as candidates too: each one is an openable snapshot via
    // its chain, and skipping them down to the newest full would silently
    // drop the WAL generations in between.
    auto fulls = ListCheckpointSequences(dir);
    if (!fulls.ok()) return fulls.status();
    auto deltas = ListDeltaCheckpointSequences(dir);
    if (!deltas.ok()) return deltas.status();
    std::vector<uint64_t> merged = std::move(*fulls);
    merged.insert(merged.end(), deltas->begin(), deltas->end());
    std::sort(merged.begin(), merged.end());
    merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
    if (merged.empty()) {
      return util::Status::NotFound("no durable state in " + dir);
    }
    for (auto it = merged.rbegin(); it != merged.rend(); ++it) {
      candidates.push_back(*it);
    }
    top = candidates.front();
  }

  // Newest full snapshot at or below `g` (0 when none): the bottom of the
  // delta chain that reconstructs generation `g`'s snapshot.
  auto resolve_base = [&dir](uint64_t g) -> uint64_t {
    while (g > 0 && !util::FileExists(dir + "/" + CheckpointFileName(g))) {
      --g;
    }
    return g;
  };

  util::Status last_error =
      util::Status::Internal("no usable checkpoint generation in " + dir);
  for (size_t c = 0; c < candidates.size(); ++c) {
    const uint64_t gen = candidates[c];
    RecoveryReport attempt;
    attempt.manifest_sequence = rep.manifest_sequence;
    attempt.manifest_missing = rep.manifest_missing;
    attempt.manifest_corrupt = rep.manifest_corrupt;
    attempt.warnings = rep.warnings;
    auto attempt_service = [&]() -> util::StatusOr<ObjectService> {
      // Reconstruct generation `gen`'s snapshot: the newest full snapshot
      // at or below it, then the delta chain base+1..gen in order.
      const uint64_t base = resolve_base(gen);
      if (base == 0) {
        return util::Status::Internal(
            "no full snapshot at or below generation " + std::to_string(gen));
      }
      auto reader = CheckpointReader::Open(dir + "/" + CheckpointFileName(base));
      if (!reader.ok()) return reader.status();
      if (reader->sequence() != base) {
        return util::Status::Internal(
            "checkpoint file names generation " +
            std::to_string(reader->sequence()) + ", expected " +
            std::to_string(base));
      }
      if (have_manifest) {
        OBJALLOC_RETURN_IF_ERROR(
            manifest_config.CheckMatches(reader->config()));
      }
      const DurableConfig config = reader->config();
      ServiceOptions service_options;
      service_options.num_shards = config.num_shards;
      auto service =
          Create(config.num_processors, config.cost_model, service_options);
      if (!service.ok()) return service.status();
      OBJALLOC_RETURN_IF_ERROR(
          service->RestoreFromCheckpointStream(&*reader, &attempt));
      for (uint64_t g = base + 1; g <= gen; ++g) {
        auto delta =
            CheckpointReader::Open(dir + "/" + DeltaCheckpointFileName(g));
        if (!delta.ok()) return delta.status();
        if (!delta->is_delta() || delta->sequence() != g ||
            delta->parent() != g - 1) {
          return util::Status::Internal(
              DeltaCheckpointFileName(g) +
              " does not chain onto generation " + std::to_string(g - 1));
        }
        OBJALLOC_RETURN_IF_ERROR(config.CheckMatches(delta->config()));
        OBJALLOC_RETURN_IF_ERROR(
            service->ApplyDeltaCheckpointStream(&*delta, &attempt));
        attempt.delta_checkpoints_applied += 1;
      }
      if (!read_only && options.delta_chain_limit > 0) {
        // Arm page tracking *before* the WAL replay below: the next delta
        // must capture every page the replayed tail re-dirties on top of
        // this snapshot.
        for (auto& shard : service->shards_) {
          shard.EnableDirtyTracking();
          shard.ClearDirty();
        }
      }
      // Replay the WAL chain gen..top; only the final generation may carry
      // a torn tail.
      size_t final_prefix = 0;
      bool final_wal_exists = false;
      for (uint64_t w = gen; w <= top; ++w) {
        auto wal_buffer = util::ReadFileToString(dir + "/" + WalFileName(w));
        if (!wal_buffer.ok()) {
          if (w == top &&
              wal_buffer.status().code() == util::StatusCode::kNotFound) {
            // The snapshot alone is a consistent state; recover to it and
            // warn (a committed generation always has its WAL, so this
            // means outside interference, not a crash window).
            attempt.warnings.push_back(
                WalFileName(w) + " missing; recovered from the snapshot alone");
            break;
          }
          return wal_buffer.status();
        }
        size_t prefix = 0;
        OBJALLOC_RETURN_IF_ERROR(service->ReplayWalBuffer(
            *wal_buffer, w, config, /*is_last=*/w == top,
            options.replay_batch_events, &attempt, &prefix));
        attempt.wal_files_replayed += 1;
        if (w == top) {
          final_prefix = prefix;
          final_wal_exists = true;
        }
      }
      if (!read_only) {
        // Arm durability on generation `top`, physically truncating the
        // torn tail (if any) so appending resumes at the last good record.
        auto d = std::make_unique<Durability>();
        d->dir = dir;
        d->options = options;
        d->config = config;
        d->sequence = top;
        // Force the next checkpoint to be full, whatever the chain policy:
        // if this attempt fell back past a broken snapshot, chaining a
        // delta onto the damaged generation would leave it load-bearing.
        d->base_sequence = base;
        d->delta_chain_length = options.delta_chain_limit;
        auto wal = final_wal_exists
                       ? WalWriter::Reopen(dir + "/" + WalFileName(top),
                                           final_prefix)
                       : WalWriter::Create(dir + "/" + WalFileName(top), top,
                                           config);
        if (!wal.ok()) return wal.status();
        d->wal = std::make_unique<AsyncWalWriter>();
        OBJALLOC_RETURN_IF_ERROR(
            d->wal->Attach(std::move(*wal), AsyncWalOptionsFrom(options)));
        d->events_since_checkpoint = attempt.events_replayed;
        service->durability_ = std::move(d);
        if (!have_manifest) {
          // Republish the commit point the next recovery will need.
          const uint64_t top_base = resolve_base(top);
          OBJALLOC_RETURN_IF_ERROR(WriteManifest(
              dir, Manifest{top, top_base == 0 ? top : top_base, config}));
        }
      }
      return service;
    }();
    if (attempt_service.ok()) {
      attempt.checkpoint_sequence = gen;
      attempt.fell_back = c > 0;
      rep = std::move(attempt);
      return attempt_service;
    }
    last_error = attempt_service.status();
    rep.warnings.push_back("generation " + std::to_string(gen) +
                           " unusable: " + last_error.ToString());
  }
  return last_error;
}

util::StatusOr<ObjectService> ObjectService::Recover(
    const std::string& dir, const DurabilityOptions& options,
    RecoveryReport* report) {
  return RecoverInternal(dir, options, report, /*read_only=*/false);
}

util::Status ObjectService::VerifyDurableDir(const std::string& dir,
                                             RecoveryReport* report) {
  auto service =
      RecoverInternal(dir, DurabilityOptions{}, report, /*read_only=*/true);
  return service.ok() ? util::Status::Ok() : service.status();
}

}  // namespace objalloc::core
