#include "objalloc/core/quorum_allocation.h"

#include "objalloc/util/logging.h"

namespace objalloc::core {

util::Status QuorumAllocationOptions::ValidateFor(int num_processors,
                                                  int t) const {
  int r = read_quorum > 0 ? read_quorum : num_processors / 2 + 1;
  int w = write_quorum > 0 ? write_quorum : num_processors / 2 + 1;
  if (r < 1 || r > num_processors || w < 1 || w > num_processors) {
    return util::Status::InvalidArgument("quorum sizes out of range");
  }
  if (r + w <= num_processors) {
    return util::Status::InvalidArgument(
        "read and write quorums must intersect (r + w > n)");
  }
  if (w < t) {
    return util::Status::InvalidArgument(
        "write quorum below the availability threshold");
  }
  return util::Status::Ok();
}

QuorumAllocation::QuorumAllocation(QuorumAllocationOptions options)
    : options_(options) {}

void QuorumAllocation::Reset(int num_processors,
                             ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(!initial_scheme.Empty());
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)));
  util::Status status =
      options_.ValidateFor(num_processors, initial_scheme.Size());
  OBJALLOC_CHECK(status.ok()) << status.ToString();
  num_processors_ = num_processors;
  r_ = options_.read_quorum > 0 ? options_.read_quorum
                                : num_processors / 2 + 1;
  w_ = options_.write_quorum > 0 ? options_.write_quorum
                                 : num_processors / 2 + 1;
  cursor_ = 0;
  scheme_ = initial_scheme;
}

ProcessorSet QuorumAllocation::RotatingQuorum(int count,
                                              ProcessorId must_include) {
  ProcessorSet quorum = ProcessorSet::Singleton(must_include);
  while (quorum.Size() < count) {
    auto candidate = static_cast<ProcessorId>(cursor_);
    cursor_ = (cursor_ + 1) % num_processors_;
    quorum.Insert(candidate);
  }
  return quorum;
}

Decision QuorumAllocation::Step(const Request& request) {
  OBJALLOC_CHECK_GT(num_processors_, 0) << "Step before Reset";
  if (request.is_read()) {
    // Poll r copies; anchoring the quorum on a current scheme member makes
    // the read legal (it sees the latest version) for any r, as the
    // version-timestamp comparison would in the real protocol.
    return Decision{RotatingQuorum(r_, scheme_.First()), false};
  }
  ProcessorSet x = RotatingQuorum(w_, request.processor);
  scheme_ = x;
  return Decision{x, false};
}

}  // namespace objalloc::core
