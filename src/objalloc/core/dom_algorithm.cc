#include "objalloc/core/dom_algorithm.h"

#include "objalloc/core/adaptive_allocation.h"
#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/util/logging.h"

namespace objalloc::core {

const char* AlgorithmKindToString(AlgorithmKind kind) {
  switch (kind) {
    case AlgorithmKind::kStatic:
      return "SA";
    case AlgorithmKind::kDynamic:
      return "DA";
    case AlgorithmKind::kAdaptive:
      return "Adaptive";
  }
  return "?";
}

std::unique_ptr<DomAlgorithm> CreateAlgorithm(AlgorithmKind kind,
                                              const model::CostModel& model) {
  switch (kind) {
    case AlgorithmKind::kStatic:
      return std::make_unique<StaticAllocation>();
    case AlgorithmKind::kDynamic:
      return std::make_unique<DynamicAllocation>();
    case AlgorithmKind::kAdaptive:
      return std::make_unique<AdaptiveAllocation>(model, AdaptiveOptions{});
  }
  OBJALLOC_CHECK(false) << "unknown algorithm kind";
  return nullptr;
}

}  // namespace objalloc::core
