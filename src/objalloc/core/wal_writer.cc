#include "objalloc/core/wal_writer.h"

#include <utility>

#include "objalloc/util/record_io.h"

namespace objalloc::core {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

AsyncWalWriter::~AsyncWalWriter() {
  // Best effort: drain and sync whatever is buffered; a failure here has
  // nowhere to go (the owner already observed the sticky error, or is being
  // torn down and recovery will see a shorter durable prefix).
  Detach();
}

util::Status AsyncWalWriter::Attach(WalWriter wal,
                                    const AsyncWalOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) {
    return util::Status::FailedPrecondition(
        "async WAL writer already attached");
  }
  if (!wal.is_open()) {
    return util::Status::FailedPrecondition(
        "async WAL writer needs an open generation file");
  }
  options_ = options;
  if (options_.group_commit_bytes == 0) options_.group_commit_bytes = 1;
  if (options_.retry.max_attempts < 1) options_.retry.max_attempts = 1;
  env_ = util::CurrentEnv();
  wal_ = std::move(wal);
  started_ = true;
  log_thread_ = std::thread([this] { LogThreadMain(); });
  return util::Status::Ok();
}

uint64_t AsyncWalWriter::Append(WalRecordType type, std::string_view payload) {
  std::unique_lock<std::mutex> lock(mu_);
  // In the sticky error state records go nowhere; the LSN still advances so
  // WaitDurable(lsn) reports the error instead of hanging.
  if (error_.ok() && wal_.is_open()) {
    space_cv_.wait(lock, [&] {
      return active_.size() < options_.max_pending_bytes || !error_.ok();
    });
    if (error_.ok()) {
      const bool was_empty = active_.empty();
      if (was_empty) group_open_ = Clock::now();
      util::AppendRecord(static_cast<uint8_t>(type), payload, &active_);
      ++records_appended_;
      bytes_appended_ += payload.size() + util::kRecordHeaderSize;
      backlog_bytes_ += payload.size() + util::kRecordHeaderSize;
      // Wake the log thread when the group opens (arming its delay timer)
      // or when the group crosses the size threshold.
      if (was_empty || active_.size() >= options_.group_commit_bytes) {
        work_cv_.notify_one();
      }
    }
  }
  return ++last_lsn_;
}

uint64_t AsyncWalWriter::AppendBatch(
    std::span<const workload::MultiObjectEvent> events) {
  batch_payload_.clear();
  EncodeBatch(events, &batch_payload_);
  return Append(WalRecordType::kBatch, batch_payload_);
}

util::Status AsyncWalWriter::WaitDurable(uint64_t lsn) {
  std::unique_lock<std::mutex> lock(mu_);
  if (lsn > last_lsn_) lsn = last_lsn_;
  if (lsn > sync_target_) {
    sync_target_ = lsn;
    work_cv_.notify_one();
  }
  done_cv_.wait(lock, [&] { return !error_.ok() || durable_lsn_ >= lsn; });
  return error_;
}

util::Status AsyncWalWriter::Flush() { return WaitDurable(last_lsn()); }

util::Status AsyncWalWriter::Rotate(WalWriter next) {
  OBJALLOC_RETURN_IF_ERROR(Flush());
  std::lock_guard<std::mutex> lock(mu_);
  // After a successful Flush the active buffer is empty and the log thread
  // holds no reference to wal_ (it only touches the file while a sealed
  // group is in flight), so the swap is safe under the lock.
  if (!next.is_open()) {
    return util::Status::FailedPrecondition(
        "rotate needs an open next-generation file");
  }
  wal_ = std::move(next);
  return util::Status::Ok();
}

util::Status AsyncWalWriter::Detach() {
  util::Status flushed = util::Status::Ok();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!started_) return error_;
    shutdown_ = true;
    work_cv_.notify_one();
  }
  if (log_thread_.joinable()) log_thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  started_ = false;
  shutdown_ = false;
  flushed = error_;
  if (flushed.ok() && durable_lsn_ < last_lsn_) {
    flushed = util::Status::Internal("async WAL shutdown left a tail");
  }
  wal_.Close();
  return flushed;
}

uint64_t AsyncWalWriter::last_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_lsn_;
}

uint64_t AsyncWalWriter::durable_lsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_lsn_;
}

bool AsyncWalWriter::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_ && error_.ok() && wal_.is_open();
}

size_t AsyncWalWriter::BacklogBytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return backlog_bytes_;
}

WalCommitStats AsyncWalWriter::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  WalCommitStats stats;
  stats.records_appended = records_appended_;
  stats.bytes_appended = bytes_appended_;
  stats.group_commits = group_commits_;
  stats.write_retries = write_retries_;
  stats.latency_samples = commit_latency_us_.count();
  if (stats.latency_samples > 0) {
    stats.commit_latency_p50_us = commit_latency_us_.Percentile(0.5);
    stats.commit_latency_p99_us = commit_latency_us_.Percentile(0.99);
  }
  return stats;
}

void AsyncWalWriter::LogThreadMain() {
  std::unique_lock<std::mutex> lock(mu_);
  std::string sealed;
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (!active_.empty() && error_.ok());
    });
    if (!error_.ok()) {
      // Sticky error: nothing further can become durable; idle until
      // shutdown so Detach can join.
      work_cv_.wait(lock, [&] { return shutdown_; });
      return;
    }
    if (active_.empty()) {
      if (shutdown_) return;
      continue;
    }
    // Hold the group open for the commit window unless something forces an
    // immediate seal (size threshold, a blocked waiter, shutdown).
    const auto deadline =
        group_open_ + std::chrono::microseconds(options_.group_commit_delay_us);
    while (!ForceSeal() && Clock::now() < deadline) {
      work_cv_.wait_until(lock, deadline);
      if (!error_.ok()) break;
    }
    if (!error_.ok()) continue;
    // Seal: swap buffers; the appender immediately has an empty active
    // buffer to fill while we write the sealed one.
    sealed.clear();
    sealed.swap(active_);
    const uint64_t sealed_end = last_lsn_;
    const auto opened = group_open_;
    space_cv_.notify_all();
    lock.unlock();
    // The log thread owns wal_ exclusively while the sealed group is in
    // flight, so the pre-write offset is a stable rollback point.
    const uint64_t group_base = wal_.offset();
    uint64_t backoff = options_.retry.initial_backoff_us;
    uint64_t retries = 0;
    util::Status status;
    for (int attempt = 0;; ++attempt) {
      status = wal_.WriteFramed(sealed);
      if (status.ok()) status = wal_.Sync(options_.sync_mode);
      if (status.ok()) break;
      if (!util::IsTransientIoError(status) ||
          attempt + 1 >= options_.retry.max_attempts) {
        // Persistent or exhausted. Best effort: erase the partial group so
        // the file ends at the last durable boundary — a recovery of the
        // degraded directory then sees a clean prefix instead of a torn
        // tail it would have to truncate.
        (void)wal_.TruncateTo(group_base);
        break;
      }
      // A failed write may be partial; roll back to the group boundary
      // before rewriting, or the retry would splice garbage mid-log.
      util::Status rollback = wal_.TruncateTo(group_base);
      if (!rollback.ok()) {
        status = rollback;
        break;
      }
      env_->SleepMicros(backoff);
      backoff *= options_.retry.backoff_multiplier;
      if (backoff > options_.retry.max_backoff_us) {
        backoff = options_.retry.max_backoff_us;
      }
      ++retries;
    }
    const auto now = Clock::now();
    lock.lock();
    write_retries_ += retries;
    if (!status.ok()) {
      error_ = status;
      done_cv_.notify_all();
      space_cv_.notify_all();
      continue;
    }
    durable_lsn_ = sealed_end;
    backlog_bytes_ -= sealed.size() > backlog_bytes_ ? backlog_bytes_
                                                     : sealed.size();
    ++group_commits_;
    commit_latency_us_.Add(
        std::chrono::duration<double, std::micro>(now - opened).count());
    done_cv_.notify_all();
  }
}

}  // namespace objalloc::core
