#include "objalloc/core/counter_replication.h"

#include <algorithm>

#include "objalloc/util/logging.h"

namespace objalloc::core {

CounterReplication::CounterReplication(CounterReplicationOptions options)
    : options_(options) {
  OBJALLOC_CHECK(options.Validate().ok());
}

void CounterReplication::Reset(int num_processors,
                               ProcessorSet initial_scheme) {
  OBJALLOC_CHECK(!initial_scheme.Empty());
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)));
  num_processors_ = num_processors;
  t_ = initial_scheme.Size();
  scheme_ = initial_scheme;
  counters_.assign(static_cast<size_t>(num_processors), 0);
  for (ProcessorId member : initial_scheme) {
    counters_[static_cast<size_t>(member)] = options_.lifetime;
  }
}

Decision CounterReplication::Step(const Request& request) {
  OBJALLOC_CHECK_GT(num_processors_, 0) << "Step before Reset";
  const ProcessorId i = request.processor;

  if (request.is_read()) {
    counters_[static_cast<size_t>(i)] = options_.lifetime;
    if (scheme_.Contains(i)) {
      return Decision{ProcessorSet::Singleton(i), false};
    }
    ProcessorId source = scheme_.First();
    scheme_.Insert(i);
    return Decision{ProcessorSet::Singleton(source), true};
  }

  // Write: age the other replicas, evict the expired (respecting t).
  ProcessorSet keep = ProcessorSet::Singleton(i);
  std::vector<ProcessorId> survivors;
  for (ProcessorId member : scheme_) {
    if (member == i) continue;
    int& counter = counters_[static_cast<size_t>(member)];
    counter = std::max(0, counter - 1);
    if (counter > 0) {
      keep.Insert(member);
    } else {
      survivors.push_back(member);  // eviction candidate, may be padded back
    }
  }
  if (keep.Size() < t_) {
    // Retain the expired members with the most recent activity first (their
    // counters are all zero; fall back to id order for determinism).
    for (ProcessorId member : survivors) {
      if (keep.Size() >= t_) break;
      keep.Insert(member);
      counters_[static_cast<size_t>(member)] = 1;
    }
    for (ProcessorId p = 0; p < num_processors_ && keep.Size() < t_; ++p) {
      if (!keep.Contains(p)) {
        keep.Insert(p);
        counters_[static_cast<size_t>(p)] = 1;
      }
    }
  }
  counters_[static_cast<size_t>(i)] = options_.lifetime;
  for (ProcessorId p = 0; p < num_processors_; ++p) {
    if (!keep.Contains(p)) counters_[static_cast<size_t>(p)] = 0;
  }
  scheme_ = keep;
  return Decision{keep, false};
}

}  // namespace objalloc::core
