// Asynchronous, double-buffered WAL writer with group commit
// (DESIGN.md §13).
//
// The serving thread appends framed records to an in-memory *active* buffer
// and keeps computing; a dedicated log thread swaps the active buffer with
// its sealed twin, writes the sealed bytes with one syscall, and makes them
// durable with one sync covering every record accumulated since the
// previous sync (group commit). Every append is assigned a log sequence
// number (LSN, 1-based record counter); WaitDurable(lsn) blocks until that
// record is on stable storage, which is how the service preserves the
// log-before-externalize contract without putting write()+fsync() on the
// serve path.
//
// Group-commit policy — the log thread seals and syncs when any of:
//   (a) the active buffer reaches `group_commit_bytes`,
//   (b) `group_commit_delay_us` has elapsed since the group's first append,
//   (c) a caller blocks in WaitDurable/Flush for a not-yet-durable LSN,
//   (d) rotation, detach, or shutdown.
// One sync then covers the whole group. Commit latency (first append in the
// group -> durable) is sampled per group for the p50/p99 stats.
//
// Failure handling (DESIGN.md §14): a failed group write or sync is first
// retried under AsyncWalOptions::retry — the file is rolled back to the
// group boundary (a partial write may have landed bytes), the thread backs
// off exponentially through the Env clock, and the whole group is
// rewritten. Only transient errors (EIO class, util/env.h) retry;
// exhaustion or a persistent error (ENOSPC class) becomes the *sticky*
// error: nothing further becomes durable, WaitDurable/Flush/Detach return
// that original Status forever after, and the owning service degrades
// durability (ObjectService keeps serving in DurabilityState::kDegraded).
// The file always ends at a record boundary of some prefix of the appended
// stream (plus at most one torn record after an OS crash or a final
// partial write), so recovery semantics are unchanged from the synchronous
// writer.
//
// Threading contract: exactly one appender thread (the service's user
// thread) calls Append/AppendBatch/Rotate/Detach; WaitDurable/Flush/Stats
// may be called from the appender thread. The log thread is internal.

#ifndef OBJALLOC_CORE_WAL_WRITER_H_
#define OBJALLOC_CORE_WAL_WRITER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>

#include "objalloc/core/wal.h"
#include "objalloc/util/io.h"
#include "objalloc/util/stats.h"
#include "objalloc/util/status.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {

struct AsyncWalOptions {
  // Longest a group is held open waiting for more appends before the log
  // thread syncs it anyway.
  uint32_t group_commit_delay_us = 500;
  // Sealing threshold: a group is synced as soon as it holds this many
  // bytes, regardless of the delay window.
  size_t group_commit_bytes = 1 << 20;
  // Backpressure: Append blocks while the active buffer holds this many
  // un-sealed bytes (bounds memory when the disk falls behind).
  size_t max_pending_bytes = 16u << 20;
  // How the log thread makes sealed bytes durable (util/io.h for the
  // crash-safety tradeoff; kNone is benchmark-only).
  util::SyncMode sync_mode = util::SyncMode::kFsync;
  // Bounded retry with exponential backoff for failed group writes/syncs
  // (util/env.h). Only transient failures (EIO class) are retried; before
  // each rewrite the file is rolled back to the group boundary, so a retry
  // can never duplicate or splice bytes. Exhaustion or a persistent error
  // becomes the sticky error.
  util::RetryPolicy retry;
};

// Point-in-time commit statistics (latencies in microseconds, one sample
// per group commit).
struct WalCommitStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t group_commits = 0;
  // Group rewrites after a transient write/sync failure (rollback + backoff
  // + rewrite). Durability was preserved; a bad disk was ridden through.
  uint64_t write_retries = 0;
  int64_t latency_samples = 0;
  double commit_latency_p50_us = 0;
  double commit_latency_p99_us = 0;
};

class AsyncWalWriter {
 public:
  AsyncWalWriter() = default;
  ~AsyncWalWriter();
  AsyncWalWriter(const AsyncWalWriter&) = delete;
  AsyncWalWriter& operator=(const AsyncWalWriter&) = delete;

  // Takes ownership of an open generation file and starts the log thread.
  // One Attach per writer instance; rotation swaps generations in place.
  util::Status Attach(WalWriter wal, const AsyncWalOptions& options);

  // Appends one framed record / one encoded batch to the active buffer and
  // returns its LSN. Never touches the disk; errors surface through
  // WaitDurable/Flush. Appender thread only.
  uint64_t Append(WalRecordType type, std::string_view payload);
  uint64_t AppendBatch(std::span<const workload::MultiObjectEvent> events);

  // Blocks until `lsn` is durable (or the writer is in its sticky error
  // state, which is returned). Wakes the log thread immediately rather than
  // waiting out the group-commit delay.
  util::Status WaitDurable(uint64_t lsn);

  // WaitDurable(last_lsn()): everything appended so far is durable.
  util::Status Flush();

  // Flushes generation g, then swaps in the (already created, header
  // written) generation g+1 file without stopping the log thread.
  util::Status Rotate(WalWriter next);

  // Flushes and closes the file; the log thread exits. Idempotent.
  util::Status Detach();

  uint64_t last_lsn() const;
  uint64_t durable_lsn() const;
  bool is_open() const;
  WalCommitStats Stats() const;

  // Bytes appended but not yet durable (active buffer + any sealed group
  // still being written/synced). This is the live backpressure signal a
  // serving front-end watches (DESIGN.md §15): it grows when the disk
  // falls behind the offered write load and drains to zero at each group
  // commit. Any thread may call it.
  size_t BacklogBytes() const;

 private:
  void LogThreadMain();
  // Under mu_: true when the log thread should seal the current group now
  // instead of waiting out the delay window.
  bool ForceSeal() const {
    return shutdown_ || sync_target_ > durable_lsn_ ||
           active_.size() >= options_.group_commit_bytes;
  }

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // log thread waits for work
  std::condition_variable done_cv_;   // waiters wait for durability
  std::condition_variable space_cv_;  // appender waits for backpressure

  AsyncWalOptions options_;
  WalWriter wal_;                 // guarded by mu_ except during a write,
                                  // when the log thread owns it exclusively
  std::string active_;            // framed records not yet sealed
  uint64_t last_lsn_ = 0;         // last appended record
  uint64_t durable_lsn_ = 0;      // last record on stable storage
  uint64_t sync_target_ = 0;      // highest LSN a caller is waiting on
  std::chrono::steady_clock::time_point group_open_;
  util::Status error_;            // sticky; Ok while healthy
  bool shutdown_ = false;
  bool started_ = false;

  uint64_t records_appended_ = 0;
  uint64_t bytes_appended_ = 0;
  size_t backlog_bytes_ = 0;  // appended, not yet durable (guarded by mu_)
  uint64_t group_commits_ = 0;
  uint64_t write_retries_ = 0;
  util::Env* env_ = nullptr;  // captured at Attach (backoff sleeps)
  util::PercentileTracker commit_latency_us_;

  std::string batch_payload_;  // appender-thread encode scratch
  std::thread log_thread_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_WAL_WRITER_H_
