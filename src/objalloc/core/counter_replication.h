// CounterReplication — a counter-based dynamic replication policy in the
// spirit of the authors' earlier CDDR algorithm ([17], ICDE'93), which was
// designed for a communication-only model. §5.1 of the paper remarks that
// CDDR "is not competitive when the I/O cost and the availability
// constraints are taken into consideration" — this implementation exists so
// the benches can measure exactly that claim against DA in the unified
// model.
//
// Policy (ski-rental style hysteresis):
//   * every replica carries a counter, reset to `lifetime` when its holder
//     reads;
//   * a read by a non-holder joins the scheme (saving-read) with a fresh
//     counter;
//   * a write decrements every other holder's counter and evicts the
//     expired ones — but never below the availability threshold t (the
//     survivors with the highest counters are retained).
//
// Unlike DA, a heavy reader keeps its replica across up to `lifetime`
// writes; unlike SA, the replica set tracks the access pattern.

#ifndef OBJALLOC_CORE_COUNTER_REPLICATION_H_
#define OBJALLOC_CORE_COUNTER_REPLICATION_H_

#include <vector>

#include "objalloc/core/dom_algorithm.h"

namespace objalloc::core {

struct CounterReplicationOptions {
  // Writes a replica survives without an intervening local read.
  int lifetime = 2;

  util::Status Validate() const {
    if (lifetime < 1) {
      return util::Status::InvalidArgument("lifetime must be >= 1");
    }
    return util::Status::Ok();
  }
};

class CounterReplication final : public DomAlgorithm {
 public:
  explicit CounterReplication(CounterReplicationOptions options);

  std::string name() const override { return "Counter"; }
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<CounterReplication>(*this);
  }

  ProcessorSet scheme() const { return scheme_; }
  int CounterOf(ProcessorId p) const {
    return counters_[static_cast<size_t>(p)];
  }

 private:
  CounterReplicationOptions options_;
  int num_processors_ = 0;
  int t_ = 0;
  ProcessorSet scheme_;
  std::vector<int> counters_;  // 0 for non-holders
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_COUNTER_REPLICATION_H_
