#include "objalloc/core/dynamic_allocation.h"

#include "objalloc/util/logging.h"

namespace objalloc::core {

void DynamicAllocation::Reset(int num_processors,
                              ProcessorSet initial_scheme) {
  OBJALLOC_CHECK_GE(initial_scheme.Size(), 2)
      << "DA needs t >= 2 (a non-empty core set F plus the floating p)";
  OBJALLOC_CHECK(
      initial_scheme.IsSubsetOf(ProcessorSet::FirstN(num_processors)));
  // F is the initial scheme minus its largest member; p is that member.
  // Any split of size (t-1, 1) is valid; this one is deterministic.
  SplitScheme(initial_scheme, &f_, &p_);
  scheme_ = initial_scheme;
  join_lists_.assign(static_cast<size_t>(initial_scheme.Size()) - 1,
                     ProcessorSet());
  next_f_index_ = 0;
}

Decision DynamicAllocation::Step(const Request& request) {
  OBJALLOC_CHECK(!f_.Empty()) << "Step before Reset";
  const ProcessorId i = request.processor;

  if (request.is_read()) {
    if (scheme_.Contains(i)) {
      return Decision{ProcessorSet::Singleton(i), false};
    }
    // Non-data processor: fetch from an F member (round-robin across F so no
    // single member's join-list grows unboundedly) and save the copy.
    const size_t f_size = static_cast<size_t>(f_.Size());
    size_t idx = static_cast<size_t>(next_f_index_) % f_size;
    next_f_index_ = static_cast<int>((idx + 1) % f_size);
    join_lists_[idx].Insert(i);
    scheme_.Insert(i);
    return Decision{
        ProcessorSet::Singleton(f_.Nth(static_cast<int>(idx))), true};
  }

  // Write: propagate to F plus the writer (plus p when the writer is in
  // F ∪ {p}, to keep the scheme at size t); everything else is invalidated.
  ProcessorSet x = WriteSet(f_, p_, i);
  scheme_ = x;
  for (ProcessorSet& jl : join_lists_) jl.Clear();
  return Decision{x, false};
}

ProcessorSet DynamicAllocation::JoinedSinceLastWrite() const {
  ProcessorSet joined;
  for (const ProcessorSet& jl : join_lists_) joined = joined.Union(jl);
  return joined;
}

ProcessorSet DynamicAllocation::JoinListOf(ProcessorId u) const {
  size_t k = 0;
  for (ProcessorId member : f_) {
    if (member == u) return join_lists_[k];
    ++k;
  }
  OBJALLOC_CHECK(false) << "processor " << u << " is not in F";
  return ProcessorSet();
}

}  // namespace objalloc::core
