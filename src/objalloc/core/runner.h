// Drives a schedule through an online DOM algorithm, producing a costed,
// validated allocation schedule.

#ifndef OBJALLOC_CORE_RUNNER_H_
#define OBJALLOC_CORE_RUNNER_H_

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_evaluator.h"
#include "objalloc/model/schedule.h"

namespace objalloc::core {

struct RunResult {
  model::AllocationSchedule allocation;
  model::CostBreakdown breakdown;
  double cost = 0;
};

// Runs `algorithm` over `schedule` from `initial_scheme`, checking after the
// fact that the produced allocation schedule is legal and t-available for
// t = |initial_scheme| (a violation is a bug in the algorithm and aborts).
model::AllocationSchedule RunAlgorithm(DomAlgorithm& algorithm,
                                       const model::Schedule& schedule,
                                       ProcessorSet initial_scheme);

// RunAlgorithm plus cost evaluation under `cost_model`.
RunResult RunWithCost(DomAlgorithm& algorithm,
                      const model::CostModel& cost_model,
                      const model::Schedule& schedule,
                      ProcessorSet initial_scheme);

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_RUNNER_H_
