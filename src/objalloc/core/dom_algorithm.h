// Distributed Object Management (DOM) algorithms (§3.4).
//
// A DOM algorithm maps each request of a schedule to an execution set (and,
// for reads, a saving decision), producing a legal allocation schedule. An
// *online* DOM algorithm makes each decision from the prefix alone — it never
// sees future requests. This header defines the online-step interface; the
// offline yardstick (OPT) lives in objalloc/opt/.

#ifndef OBJALLOC_CORE_DOM_ALGORITHM_H_
#define OBJALLOC_CORE_DOM_ALGORITHM_H_

#include <memory>
#include <string>

#include "objalloc/model/allocation_schedule.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/request.h"

namespace objalloc::core {

using model::AllocatedRequest;
using model::ProcessorSet;
using model::Request;
using util::ProcessorId;

// The outcome of one online step.
struct Decision {
  ProcessorSet execution_set;
  bool saving = false;  // reads only: store the object at the reader
};

// Interface for online DOM algorithms. Implementations are driven by a
// Runner: Reset() once per schedule, then Step() per request in order.
// Implementations must be deterministic given (initial scheme, prefix).
class DomAlgorithm {
 public:
  virtual ~DomAlgorithm() = default;

  virtual std::string name() const = 0;

  // Prepares for a fresh schedule over `num_processors` processors with the
  // given initial allocation scheme. The scheme size is the algorithm's
  // availability threshold t.
  virtual void Reset(int num_processors, ProcessorSet initial_scheme) = 0;

  // Serves the next request; called strictly in schedule order after Reset.
  virtual Decision Step(const Request& request) = 0;

  // An independent copy with the same configuration. Parallel drivers (the
  // competitive sweeps, adversarial searches, and ensemble runners) clone
  // one prototype per concurrent unit of work; clones share no state, and
  // callers Reset() them before use.
  virtual std::unique_ptr<DomAlgorithm> Clone() const = 0;
};

// Algorithm identifiers for factories and report labels.
enum class AlgorithmKind {
  kStatic,    // SA: read-one-write-all over a fixed scheme (§4.2.1)
  kDynamic,   // DA: saving-reads + invalidation via join-lists (§4.2.2)
  kAdaptive,  // convergent sliding-window allocator (extension, cf. §5.1)
};

const char* AlgorithmKindToString(AlgorithmKind kind);

// True for the kinds whose step function ObjectShard evaluates inline (a
// switch on AlgorithmKind over value-stored state) instead of through a
// heap-allocated DomAlgorithm and a virtual Step() call. The two paths are
// the same function by construction: the shard calls the classes' static
// rule helpers (StaticAllocation::Decide, DynamicAllocation::WriteSet /
// SplitScheme), and tests/serving_engine_test.cc asserts per-request cost
// equality between the shard and the reference classes.
constexpr bool IsInlinableKind(AlgorithmKind kind) {
  return kind == AlgorithmKind::kStatic || kind == AlgorithmKind::kDynamic;
}

// Creates an algorithm instance. `model` is used only by kAdaptive (its
// expansion/contraction tests compare communication vs I/O costs); SA and DA
// are cost-oblivious, as in the paper.
std::unique_ptr<DomAlgorithm> CreateAlgorithm(AlgorithmKind kind,
                                              const model::CostModel& model);

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_DOM_ALGORITHM_H_
