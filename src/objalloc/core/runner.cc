#include "objalloc/core/runner.h"

#include "objalloc/model/legality.h"
#include "objalloc/util/logging.h"

namespace objalloc::core {

model::AllocationSchedule RunAlgorithm(DomAlgorithm& algorithm,
                                       const model::Schedule& schedule,
                                       ProcessorSet initial_scheme) {
  algorithm.Reset(schedule.num_processors(), initial_scheme);
  model::AllocationSchedule allocation(schedule.num_processors(),
                                       initial_scheme);
  for (const Request& request : schedule.requests()) {
    Decision decision = algorithm.Step(request);
    allocation.Append(request, decision.execution_set,
                      request.is_read() && decision.saving);
  }
  util::Status status =
      model::CheckLegalAndTAvailable(allocation, initial_scheme.Size());
  OBJALLOC_CHECK(status.ok()) << algorithm.name() << " produced an invalid "
                              << "allocation schedule: " << status.ToString();
  return allocation;
}

RunResult RunWithCost(DomAlgorithm& algorithm,
                      const model::CostModel& cost_model,
                      const model::Schedule& schedule,
                      ProcessorSet initial_scheme) {
  model::AllocationSchedule allocation =
      RunAlgorithm(algorithm, schedule, initial_scheme);
  model::CostBreakdown breakdown = model::ScheduleBreakdown(allocation);
  double cost = breakdown.Cost(cost_model);
  return RunResult{std::move(allocation), breakdown, cost};
}

}  // namespace objalloc::core
