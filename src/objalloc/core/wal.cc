#include "objalloc/core/wal.h"

#include <cstring>

#include "objalloc/util/record_io.h"

namespace objalloc::core {

using util::AppendScalar;
using util::PayloadReader;

void DurableConfig::AppendTo(std::string* out) const {
  AppendScalar(num_processors, out);
  AppendScalar(num_shards, out);
  AppendScalar(cost_model.io, out);
  AppendScalar(cost_model.control, out);
  AppendScalar(cost_model.data, out);
}

util::StatusOr<DurableConfig> DurableConfig::Parse(PayloadReader* reader) {
  DurableConfig config;
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&config.num_processors));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&config.num_shards));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&config.cost_model.io));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&config.cost_model.control));
  OBJALLOC_RETURN_IF_ERROR(reader->Read(&config.cost_model.data));
  if (config.num_processors < 1 ||
      config.num_processors > util::kMaxProcessors) {
    return util::Status::Internal("durable config: bad processor count");
  }
  if (config.num_shards < 1 || config.num_shards > 65536) {
    return util::Status::Internal("durable config: bad shard count");
  }
  OBJALLOC_RETURN_IF_ERROR(config.cost_model.Validate());
  return config;
}

util::Status DurableConfig::CheckMatches(const DurableConfig& other) const {
  if (num_processors != other.num_processors ||
      num_shards != other.num_shards ||
      !(cost_model == other.cost_model)) {
    return util::Status::Internal(
        "durable state written under a different service configuration "
        "(processors/shards/cost model mismatch)");
  }
  return util::Status::Ok();
}

void EncodeWalHeader(uint64_t sequence, const DurableConfig& config,
                     std::string* out, uint32_t version) {
  AppendScalar(kWalMagic, out);
  AppendScalar(version, out);
  AppendScalar(sequence, out);
  config.AppendTo(out);
}

util::StatusOr<WalHeader> DecodeWalHeader(std::string_view payload) {
  PayloadReader reader(payload);
  uint32_t magic = 0, version = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&magic));
  if (magic != kWalMagic) {
    return util::Status::Internal("not a WAL file (bad magic)");
  }
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&version));
  if (version < kMinDurabilityFormatVersion ||
      version > kDurabilityFormatVersion) {
    return util::Status::Internal("unsupported WAL format version " +
                                  std::to_string(version));
  }
  WalHeader header;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&header.sequence));
  auto config = DurableConfig::Parse(&reader);
  if (!config.ok()) return config.status();
  header.config = *config;
  return header;
}

void EncodeAddObject(ObjectId id, const ObjectConfig& config,
                     std::string* out) {
  AppendScalar(id, out);
  AppendScalar(config.initial_scheme.mask(), out);
  AppendScalar(static_cast<uint8_t>(config.algorithm), out);
}

util::StatusOr<AddObjectRecord> DecodeAddObject(std::string_view payload) {
  PayloadReader reader(payload);
  AddObjectRecord record;
  uint64_t mask = 0;
  uint8_t kind = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&record.id));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&mask));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&kind));
  record.config.initial_scheme = ProcessorSet(mask);
  record.config.algorithm = static_cast<AlgorithmKind>(kind);
  return record;
}

void EncodeBatch(std::span<const workload::MultiObjectEvent> events,
                 std::string* out) {
  // This is on the serve path for every durable batch: one resize, then raw
  // stores, instead of per-field string appends.
  constexpr size_t kEventBytes = 8 + 1 + 4;
  const size_t base = out->size();
  out->resize(base + sizeof(uint32_t) + events.size() * kEventBytes);
  char* p = out->data() + base;
  const uint32_t count = static_cast<uint32_t>(events.size());
  std::memcpy(p, &count, sizeof(count));
  p += sizeof(count);
  for (const workload::MultiObjectEvent& event : events) {
    const int64_t object = event.object;
    const uint8_t write = event.request.is_write() ? 1 : 0;
    const int32_t processor = static_cast<int32_t>(event.request.processor);
    std::memcpy(p, &object, sizeof(object));
    p[8] = static_cast<char>(write);
    std::memcpy(p + 9, &processor, sizeof(processor));
    p += kEventBytes;
  }
}

util::Status DecodeBatch(std::string_view payload,
                         std::vector<workload::MultiObjectEvent>* out) {
  PayloadReader reader(payload);
  uint32_t count = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&count));
  constexpr size_t kEventBytes = 8 + 1 + 4;
  if (reader.remaining() != static_cast<size_t>(count) * kEventBytes) {
    return util::Status::Internal("batch record size mismatch");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    workload::MultiObjectEvent event;
    uint8_t write = 0;
    int32_t processor = 0;
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&event.object));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&write));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&processor));
    event.request = write != 0 ? model::Request::Write(processor)
                               : model::Request::Read(processor);
    out->push_back(event);
  }
  return util::Status::Ok();
}

void EncodeEnableFaults(const FaultInjectorOptions& options,
                        const FaultSchedule& schedule, std::string* out) {
  AppendScalar(options.seed, out);
  AppendScalar(options.crash_rate, out);
  AppendScalar(options.recover_rate, out);
  AppendScalar(options.control_loss_rate, out);
  AppendScalar(options.data_loss_rate, out);
  AppendScalar(static_cast<int32_t>(options.max_retries), out);
  AppendScalar(static_cast<int32_t>(options.min_live), out);
  AppendScalar(static_cast<uint32_t>(schedule.size()), out);
  for (const FaultEvent& event : schedule) {
    AppendScalar(static_cast<uint64_t>(event.before_event), out);
    AppendScalar(static_cast<int32_t>(event.processor), out);
    AppendScalar(static_cast<uint8_t>(event.crash ? 1 : 0), out);
  }
}

util::StatusOr<EnableFaultsRecord> DecodeEnableFaults(
    std::string_view payload) {
  PayloadReader reader(payload);
  EnableFaultsRecord record;
  int32_t max_retries = 0, min_live = 0;
  uint32_t count = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&record.options.seed));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&record.options.crash_rate));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&record.options.recover_rate));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&record.options.control_loss_rate));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&record.options.data_loss_rate));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&max_retries));
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&min_live));
  record.options.max_retries = max_retries;
  record.options.min_live = min_live;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&count));
  constexpr size_t kEntryBytes = 8 + 4 + 1;
  if (reader.remaining() != static_cast<size_t>(count) * kEntryBytes) {
    return util::Status::Internal("fault schedule record size mismatch");
  }
  record.schedule.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint64_t before_event = 0;
    int32_t processor = 0;
    uint8_t crash = 0;
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&before_event));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&processor));
    OBJALLOC_RETURN_IF_ERROR(reader.Read(&crash));
    record.schedule.push_back(
        FaultEvent{static_cast<size_t>(before_event), processor, crash != 0});
  }
  return record;
}

void EncodeProcessor(util::ProcessorId processor, std::string* out) {
  AppendScalar(static_cast<int32_t>(processor), out);
}

util::StatusOr<util::ProcessorId> DecodeProcessor(std::string_view payload) {
  PayloadReader reader(payload);
  int32_t processor = 0;
  OBJALLOC_RETURN_IF_ERROR(reader.Read(&processor));
  return static_cast<util::ProcessorId>(processor);
}

util::StatusOr<WalWriter> WalWriter::Create(const std::string& path,
                                            uint64_t sequence,
                                            const DurableConfig& config) {
  // Truncate any stale file of the same name (e.g. a generation left behind
  // by a crash between checkpoint and manifest publication).
  auto file = util::AppendFile::Open(path, /*truncate_to=*/0);
  if (!file.ok()) return file.status();
  WalWriter writer;
  writer.file_ = std::move(*file);
  writer.payload_.clear();
  EncodeWalHeader(sequence, config, &writer.payload_);
  OBJALLOC_RETURN_IF_ERROR(writer.Append(WalRecordType::kWalHeader,
                                         writer.payload_));
  OBJALLOC_RETURN_IF_ERROR(writer.Sync());
  return writer;
}

util::StatusOr<WalWriter> WalWriter::Reopen(const std::string& path,
                                            uint64_t truncate_to) {
  auto file = util::AppendFile::Open(path, truncate_to);
  if (!file.ok()) return file.status();
  WalWriter writer;
  writer.file_ = std::move(*file);
  return writer;
}

util::Status WalWriter::Append(WalRecordType type, std::string_view payload) {
  scratch_.clear();
  util::AppendRecord(static_cast<uint8_t>(type), payload, &scratch_);
  return file_.Append(scratch_);
}

util::Status WalWriter::AppendBatch(
    std::span<const workload::MultiObjectEvent> events) {
  payload_.clear();
  EncodeBatch(events, &payload_);
  return Append(WalRecordType::kBatch, payload_);
}

std::string WalFileName(uint64_t sequence) {
  return "wal-" + std::to_string(sequence) + ".log";
}

}  // namespace objalloc::core
