// Write-ahead log for the ObjectService (DESIGN.md §10).
//
// The serving engine is a deterministic state machine: given the same
// registration order and the same admission-order event stream (plus the
// fault layer's seeded draws, themselves pure functions of the admission
// index), every run reproduces bit-identical schemes and cost breakdowns
// (§7-§9). Durability therefore reduces to logging the *inputs* — one
// record per state-changing operation, appended before the operation
// mutates shard state — and replaying them through the very same
// ServeBatchImpl on recovery. No per-object redo records, no physical
// pages: the log is the admission stream.
//
// Record kinds (framed by util/record_io — length-prefixed, CRC32-checked):
//   kWalHeader      magic + format version + generation + service config
//   kAddObject      one object registration
//   kBatch          one admitted batch (object id, r/w kind, processor per
//                   event) — logged for every batch that passed validation,
//                   including fault-mode batches later rejected UNAVAILABLE
//                   (they consumed a fault-time window that replay must
//                   consume too)
//   kEnableFaults   fault-injector options + scripted schedule
//   kDisableFaults  (empty payload)
//   kCrash/kRecover manual liveness control
//   kRepairDegraded eager repair sweep
//
// Torn tails: a crash mid-append leaves a final partial record; the reader
// reports the valid prefix so recovery truncates exactly there and replays
// a consistent prefix of history. A CRC failure *inside* the prefix is
// corruption, reported as an error (recovery falls back to the previous
// checkpoint generation).

#ifndef OBJALLOC_CORE_WAL_H_
#define OBJALLOC_CORE_WAL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "objalloc/core/fault_injector.h"
#include "objalloc/core/object_shard.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/util/io.h"
#include "objalloc/util/record_io.h"
#include "objalloc/util/status.h"
#include "objalloc/workload/multi_object.h"

namespace objalloc::core {

// On-disk record types (values are persisted; append only, never renumber).
enum class WalRecordType : uint8_t {
  kWalHeader = 1,
  kAddObject = 2,
  kBatch = 3,
  kEnableFaults = 4,
  kDisableFaults = 5,
  kCrash = 6,
  kRecover = 7,
  kRepairDegraded = 8,
};

inline constexpr uint32_t kWalMagic = 0x4c57414f;  // "OAWL"
// v1: monolithic checkpoint shard records (one full-state kShard payload
//     per shard).
// v2: checkpoint shard state streams through bounded kShardChunk records.
// WAL and manifest layouts are unchanged across the bump; writers stamp
// the current version, readers accept the full range.
inline constexpr uint32_t kMinDurabilityFormatVersion = 1;
inline constexpr uint32_t kDurabilityFormatVersion = 2;

// The immutable service configuration a log (or checkpoint) was written
// under. Recovery refuses to replay against a mismatched world: shard
// count changes the partitioning, processor count and cost model change
// every decision.
struct DurableConfig {
  int32_t num_processors = 0;
  int32_t num_shards = 0;
  model::CostModel cost_model;

  void AppendTo(std::string* out) const;
  static util::StatusOr<DurableConfig> Parse(util::PayloadReader* reader);
  util::Status CheckMatches(const DurableConfig& other) const;
};

// --- Record payload codecs ---------------------------------------------
// Each Encode* appends the *payload* for its record type to `*out` (the
// caller frames it via util::AppendRecord); each Decode* parses one.

// `version` exists for compatibility tests that craft old-format files;
// production writers always stamp the current version.
void EncodeWalHeader(uint64_t sequence, const DurableConfig& config,
                     std::string* out,
                     uint32_t version = kDurabilityFormatVersion);
struct WalHeader {
  uint64_t sequence = 0;
  DurableConfig config;
};
util::StatusOr<WalHeader> DecodeWalHeader(std::string_view payload);

void EncodeAddObject(ObjectId id, const ObjectConfig& config,
                     std::string* out);
struct AddObjectRecord {
  ObjectId id = -1;
  ObjectConfig config;
};
util::StatusOr<AddObjectRecord> DecodeAddObject(std::string_view payload);

// A batch is stored id-addressed regardless of which entry point admitted
// it: the handle path resolves to the same (object, request) stream, and
// the two entry points are bit-identical by the engine's own contract.
void EncodeBatch(std::span<const workload::MultiObjectEvent> events,
                 std::string* out);
util::Status DecodeBatch(std::string_view payload,
                         std::vector<workload::MultiObjectEvent>* out);

void EncodeEnableFaults(const FaultInjectorOptions& options,
                        const FaultSchedule& schedule, std::string* out);
struct EnableFaultsRecord {
  FaultInjectorOptions options;
  FaultSchedule schedule;
};
util::StatusOr<EnableFaultsRecord> DecodeEnableFaults(
    std::string_view payload);

void EncodeProcessor(util::ProcessorId processor, std::string* out);
util::StatusOr<util::ProcessorId> DecodeProcessor(std::string_view payload);

// --- Writer ------------------------------------------------------------

// Appends framed records to one WAL generation file. Thin stateful wrapper
// over util::AppendFile: owns the encode scratch so steady-state batch
// logging reuses one buffer, tracks the record count, and exposes Sync for
// the service's durability policy (every batch, or only at checkpoints).
class WalWriter {
 public:
  // Creates (or truncates-and-reopens, when `truncate_to` is given) the
  // generation file. A freshly created file gets the header record
  // immediately; a reopened one is assumed to already carry it.
  static util::StatusOr<WalWriter> Create(const std::string& path,
                                          uint64_t sequence,
                                          const DurableConfig& config);
  static util::StatusOr<WalWriter> Reopen(const std::string& path,
                                          uint64_t truncate_to);

  WalWriter() = default;
  WalWriter(WalWriter&&) = default;
  WalWriter& operator=(WalWriter&&) = default;

  // Appends one framed record (payload built by an Encode* helper).
  util::Status Append(WalRecordType type, std::string_view payload);

  // Convenience: encodes and appends one admitted batch.
  util::Status AppendBatch(std::span<const workload::MultiObjectEvent> events);

  // Writes bytes that are *already* framed records (the async writer seals
  // whole buffers of them); the caller owns the framing invariant.
  util::Status WriteFramed(std::string_view bytes) {
    return file_.Append(bytes);
  }

  util::Status Sync(util::SyncMode mode = util::SyncMode::kFsync) {
    return file_.Sync(mode);
  }
  // Rolls the file back to `size` bytes (a group boundary recorded before a
  // failed — possibly partial — WriteFramed) so a retry rewrites the group
  // instead of appending after mid-file garbage.
  util::Status TruncateTo(uint64_t size) { return file_.TruncateTo(size); }
  uint64_t offset() const { return file_.offset(); }
  const std::string& path() const { return file_.path(); }
  bool is_open() const { return file_.is_open(); }
  void Close() { file_.Close(); }

 private:
  util::AppendFile file_;
  std::string scratch_;   // framed-record build buffer, recycled
  std::string payload_;   // payload build buffer, recycled
};

// Name of generation `sequence`'s WAL file inside a durability directory.
std::string WalFileName(uint64_t sequence);

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_WAL_H_
