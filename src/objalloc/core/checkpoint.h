// Checkpointing and crash-consistent recovery for the ObjectService
// (DESIGN.md §10).
//
// A durability directory holds, per *generation* g:
//
//   checkpoint-<g>.ckpt   full-state snapshot: every shard's slot table
//                         (schemes, DA core sets, per-object accounting,
//                         crash-log cursors) plus the service-level fault
//                         state (live set, crash journal, injector cursor,
//                         fault stats) — written via temp file + fsync +
//                         atomic rename
//   checkpoint-<g>.delta  delta snapshot (DESIGN.md §13): only the slab
//                         pages dirtied since generation g-1, chained onto
//                         the newest full snapshot at or below g; restoring
//                         g means full base + deltas base+1..g in order
//   wal-<g>.log           the admission-stream WAL appended since that
//                         snapshot (core/wal.h)
//   MANIFEST              atomically-replaced pointer {format version,
//                         current generation, full base generation,
//                         service config}
//
// state(checkpoint g+1) == state(checkpoint g) + replay(wal-<g>), so the
// newest generation recovers from its snapshot plus its WAL tail, and a
// corrupt snapshot degrades gracefully: fall back to generation g-1 and
// replay two WALs instead of one. Torn WAL tails (crash mid-append) are
// truncated at the last whole record; recovery is therefore always a
// *prefix* of the admitted history — and because serving is a pure
// function of admission order, the recovered state is bit-identical to an
// uninterrupted run over that prefix (asserted by tests/durability_test).
//
// All failure modes surface as util::Status plus a RecoveryReport (the
// fsck-style account of what was read, replayed, truncated, and skipped);
// nothing in this layer aborts on bad bytes.

#ifndef OBJALLOC_CORE_CHECKPOINT_H_
#define OBJALLOC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "objalloc/core/wal.h"
#include "objalloc/util/io.h"

namespace objalloc::core {

// On-disk record types of checkpoint and manifest files (persisted values;
// disjoint from WalRecordType so a misfiled buffer is caught immediately).
enum class CheckpointRecordType : uint8_t {
  kCkptHeader = 16,
  kServiceState = 17,
  kShard = 18,       // format v1: one monolithic payload per shard
  kCkptFooter = 19,
  kShardChunk = 20,  // format v2: bounded slice of one shard's payload
  kDeltaHeader = 21, // delta snapshot header: names its parent generation
  kManifest = 32,
};

inline constexpr uint32_t kCheckpointMagic = 0x4b43414f;  // "OACK"
inline constexpr uint32_t kManifestMagic = 0x464d414f;    // "OAMF"
inline constexpr char kManifestFileName[] = "MANIFEST";

std::string CheckpointFileName(uint64_t sequence);
std::string DeltaCheckpointFileName(uint64_t sequence);

// Durability knobs (validated by ObjectService::EnableDurability).
struct DurabilityOptions {
  // fsync the WAL after every admitted batch (full write-ahead durability)
  // or only at checkpoints / explicit SyncDurable() calls (group commit —
  // a crash may lose the un-synced suffix, never consistency).
  bool sync_every_batch = false;
  // Take a checkpoint automatically after this many logged events
  // (0 = only on explicit Checkpoint() calls).
  size_t checkpoint_interval_events = 0;
  // Generations kept on disk; >= 2 so recovery can fall back one snapshot.
  int keep_generations = 2;
  // Group-commit window: longest the async log thread holds a group of
  // WAL records open waiting for more appends before syncing it anyway
  // (0 = sync each group as soon as the log thread picks it up).
  uint32_t group_commit_delay_us = 500;
  // Group-commit size threshold: a group is sealed and synced as soon as
  // it buffers this many bytes, regardless of the delay window.
  size_t group_commit_bytes = 1 << 20;
  // How sealed WAL bytes are made durable (util/io.h documents the
  // tradeoff; SyncMode::kNone is benchmark-only).
  util::SyncMode sync_mode = util::SyncMode::kFsync;
  // Delta checkpoints: when > 0, up to this many consecutive checkpoints
  // are written as deltas (dirty slab pages only) chained onto the newest
  // full snapshot before a full one is forced (0 = every checkpoint full).
  size_t delta_chain_limit = 0;
  // Recovery coalesces consecutive replayed WAL batches into super-batches
  // of up to this many events and pipelines them through the shard
  // executor (0 = replay batch-by-batch; the recovered state is
  // bit-identical either way).
  size_t replay_batch_events = 32768;
  // Bounded retry with exponential backoff (util/env.h) for WAL group
  // writes and checkpoint/manifest publication. Transient failures (EIO
  // class) are absorbed; exhaustion or a persistent error (ENOSPC class)
  // degrades the service to DurabilityState::kDegraded — it keeps serving,
  // stops logging, and holds the original error until
  // ReattachDurability(). max_attempts = 1 disables retry.
  util::RetryPolicy retry;
  // After ReattachDurability() publishes the fresh generation, re-open the
  // directory read-only and verify it recovers (the "verifiable resync").
  // Costs one full read of the new snapshot; disable for huge stores where
  // the next scheduled scrub is enough.
  bool verify_reattach = true;

  util::Status Validate() const;
};

// The fsck-style account of a recovery (or dry-run verification) pass.
struct RecoveryReport {
  uint64_t manifest_sequence = 0;    // generation the manifest named
  uint64_t checkpoint_sequence = 0;  // generation actually loaded
  bool manifest_missing = false;
  bool manifest_corrupt = false;
  bool fell_back = false;            // newest snapshot unusable, used older
  size_t delta_checkpoints_applied = 0;  // chain links on top of the base
  size_t wal_files_replayed = 0;
  size_t records_replayed = 0;       // WAL records applied
  size_t batches_replayed = 0;
  size_t events_replayed = 0;
  size_t objects_restored = 0;
  bool torn_tail = false;            // newest WAL ended mid-record
  uint64_t torn_bytes_truncated = 0;
  std::vector<std::string> warnings;

  std::string ToString() const;
};

// --- Scrub (deep fsck) --------------------------------------------------
// ObjectService::Scrub walks every file in a durability directory — the
// manifest, each full and delta snapshot, each WAL — verifying framing and
// CRCs record by record, then runs the read-only recovery pipeline to
// decide overall recoverability. Per-file verdicts tell an operator *which*
// file a bad disk chewed, not just that recovery would fall back.

enum class ScrubVerdict : uint8_t {
  kOk = 0,
  // The file ends mid-record (crash or partial write); the valid prefix is
  // intact and recovery truncates the tail. Only legal in the newest WAL.
  kTornTail = 1,
  // CRC mismatch, bad magic, or structural damage inside the valid region.
  kCorrupt = 2,
  // A failed generation set aside by ReattachDurability (never replayed;
  // kept for forensics).
  kQuarantined = 3,
  // Leftover temp file or a name this layer never writes.
  kStray = 4,
};

struct ScrubFileReport {
  std::string name;
  ScrubVerdict verdict = ScrubVerdict::kOk;
  uint64_t bytes = 0;
  uint64_t records = 0;  // framed records whose CRCs verified
  std::string detail;    // what exactly is wrong (empty when kOk)
};

struct ScrubReport {
  // The directory recovers (possibly with fallback/truncation warnings).
  bool recoverable = false;
  // Recoverable AND every file verdict is kOk AND recovery needed no
  // fallback, truncation, or manifest reconstruction.
  bool clean = false;
  std::vector<ScrubFileReport> files;
  RecoveryReport recovery;  // the read-only recovery account

  std::string ToString() const;
};

const char* ScrubVerdictName(ScrubVerdict verdict);

// Serializable image of the service-level fault/durability state (the
// parts of ObjectService outside the shards). Captured into a checkpoint's
// kServiceState record and restored on recovery.
struct ServiceStateImage {
  bool faults_enabled = false;
  FaultInjectorOptions injector_options;
  FaultSchedule schedule;
  uint64_t injector_cursor = 0;
  uint64_t live_mask = 0;
  CrashLog crash_log;
  FaultStats stats;

  void AppendTo(std::string* out) const;
  static util::StatusOr<ServiceStateImage> Parse(std::string_view payload);
};

// --- Manifest ----------------------------------------------------------

struct Manifest {
  uint64_t sequence = 0;
  // Newest *full* snapshot at or below `sequence`: recovery restores it,
  // then applies the delta chain base+1..sequence. Equals `sequence` when
  // the current generation's snapshot is itself full (WriteManifest treats
  // a zero base as "same as sequence"; pre-delta manifests omit the field
  // and parse the same way).
  uint64_t base_sequence = 0;
  DurableConfig config;
};

util::Status WriteManifest(const std::string& dir, const Manifest& manifest);
util::StatusOr<Manifest> ReadManifest(const std::string& dir);

// --- Checkpoint record assembly (in-memory) ----------------------------
// Building blocks of a checkpoint byte stream: header record,
// service-state record, shard payload records, footer with the shard count
// (so truncation at a record boundary is still detected). The service
// streams them through CheckpointWriter below; compatibility tests use
// these directly to craft old-format files (AppendShardRecord emits the v1
// monolithic layout — pass version = 1 to BeginCheckpoint alongside it).

void BeginCheckpoint(uint64_t sequence, const DurableConfig& config,
                     std::string* out,
                     uint32_t version = kDurabilityFormatVersion);
// Header of a delta snapshot: same shape plus the parent generation the
// delta applies on top of (sequence - 1; the chain bottoms out at the full
// snapshot the manifest names as base_sequence).
void BeginDeltaCheckpoint(uint64_t sequence, uint64_t parent,
                          const DurableConfig& config, std::string* out,
                          uint32_t version = kDurabilityFormatVersion);
void AppendServiceStateRecord(const ServiceStateImage& image,
                              std::string* out);
void AppendShardRecord(std::string_view shard_payload, std::string* out);
void AppendShardChunkRecord(uint32_t shard_index, bool last,
                            std::string_view bytes, std::string* out);
void FinishCheckpoint(uint32_t shard_count, std::string* out);

// --- Streaming checkpoint writer (format v2) ---------------------------
// Streams one checkpoint straight to disk through an AtomicFileWriter:
// shard snapshot bytes accumulate into bounded kShardChunk records, so
// peak memory is O(chunk) however large the shard. Commit happens in
// Finish (rename over the final name); dropping the writer earlier
// abandons the temp file.

class CheckpointWriter {
 public:
  // Flush threshold for shard bytes. One slab page of slot records
  // (~150 KiB) fits in a single chunk.
  static constexpr size_t kChunkBytes = 256 * 1024;

  static util::StatusOr<CheckpointWriter> Open(const std::string& path,
                                               uint64_t sequence,
                                               const DurableConfig& config);
  // Same stream shape, but the header is a kDeltaHeader naming `parent`,
  // and shard bytes carry the dirty-range delta payload
  // (ObjectShard::AppendDeltaHeader/AppendDeltaRange) instead of a full
  // snapshot.
  static util::StatusOr<CheckpointWriter> OpenDelta(
      const std::string& path, uint64_t sequence, uint64_t parent,
      const DurableConfig& config);

  CheckpointWriter() = default;
  CheckpointWriter(CheckpointWriter&&) = default;
  CheckpointWriter& operator=(CheckpointWriter&&) = default;

  util::Status AppendServiceState(const ServiceStateImage& image);

  // Shard payloads stream in shard order: BeginShard, any number of
  // AppendShardBytes (flushed as chunk records at kChunkBytes), EndShard
  // (emits the final chunk, flagged last, even when empty).
  void BeginShard(uint32_t shard_index);
  util::Status AppendShardBytes(std::string_view bytes);
  util::Status EndShard();

  // Footer + fsync + atomic publish.
  util::Status Finish(uint32_t shard_count);

 private:
  util::Status FlushChunk(bool last);

  util::AtomicFileWriter file_;
  std::string chunk_;   // pending shard bytes for the open chunk
  std::string record_;  // framed-record build buffer, recycled
  uint32_t shard_index_ = 0;
  bool shard_open_ = false;
};

// --- Streaming checkpoint reader ---------------------------------------
// Reads a checkpoint file record by record through a bounded buffer,
// accepting v1 (a monolithic kShard record is simply one chunk that
// arrives whole) and v2 alike; enforces record order, CRCs, the footer
// count, and a byte-exact end of file.

class CheckpointReader {
 public:
  static util::StatusOr<CheckpointReader> Open(const std::string& path);

  CheckpointReader() = default;
  CheckpointReader(CheckpointReader&&) = default;
  CheckpointReader& operator=(CheckpointReader&&) = default;

  uint64_t sequence() const { return sequence_; }
  uint32_t version() const { return version_; }
  const DurableConfig& config() const { return config_; }
  // True when the file opened with a kDeltaHeader; its shard chunks then
  // carry dirty-range delta payloads to apply on top of parent().
  bool is_delta() const { return is_delta_; }
  uint64_t parent() const { return parent_; }

  // One step of the stream. Exactly one of the three shapes per call:
  // service state (`service_state` true), a shard chunk (`bytes` points
  // into the reader's buffer, valid until the next call), or end of
  // checkpoint (`done` true, all structural checks passed).
  struct Piece {
    bool done = false;
    bool service_state = false;
    ServiceStateImage state;
    uint32_t shard = 0;
    bool last = false;
    std::string_view bytes;
  };
  util::Status Next(Piece* piece);

 private:
  // Reads one framed record into payload_, CRC-checked. `*eof` reports a
  // clean end of file (torn records are corruption — checkpoints are
  // published atomically).
  util::Status ReadRecord(uint8_t* type, bool* eof);

  util::FileReader file_;
  std::string payload_;
  uint64_t sequence_ = 0;
  uint64_t parent_ = 0;
  uint32_t version_ = 0;
  bool is_delta_ = false;
  DurableConfig config_;
  bool saw_state_ = false;
  bool shard_open_ = false;
  uint32_t next_shard_ = 0;  // shards must arrive 0..n-1, each completed
};

// Durable generation files present in `dir` (by checkpoint file name),
// ascending. Used when the manifest itself is unreadable. Lists *full*
// snapshots only — a delta is unusable without its base, and every delta
// generation's state is equally reachable from the newest full snapshot
// plus the per-generation WALs.
util::StatusOr<std::vector<uint64_t>> ListCheckpointSequences(
    const std::string& dir);

// Delta snapshot generations present in `dir`, ascending (GC bookkeeping).
util::StatusOr<std::vector<uint64_t>> ListDeltaCheckpointSequences(
    const std::string& dir);

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_CHECKPOINT_H_
