// Checkpointing and crash-consistent recovery for the ObjectService
// (DESIGN.md §10).
//
// A durability directory holds, per *generation* g:
//
//   checkpoint-<g>.ckpt   full-state snapshot: every shard's slot table
//                         (schemes, DA core sets, per-object accounting,
//                         crash-log cursors) plus the service-level fault
//                         state (live set, crash journal, injector cursor,
//                         fault stats) — written via temp file + fsync +
//                         atomic rename
//   wal-<g>.log           the admission-stream WAL appended since that
//                         snapshot (core/wal.h)
//   MANIFEST              atomically-replaced pointer {format version,
//                         current generation, service config}
//
// state(checkpoint g+1) == state(checkpoint g) + replay(wal-<g>), so the
// newest generation recovers from its snapshot plus its WAL tail, and a
// corrupt snapshot degrades gracefully: fall back to generation g-1 and
// replay two WALs instead of one. Torn WAL tails (crash mid-append) are
// truncated at the last whole record; recovery is therefore always a
// *prefix* of the admitted history — and because serving is a pure
// function of admission order, the recovered state is bit-identical to an
// uninterrupted run over that prefix (asserted by tests/durability_test).
//
// All failure modes surface as util::Status plus a RecoveryReport (the
// fsck-style account of what was read, replayed, truncated, and skipped);
// nothing in this layer aborts on bad bytes.

#ifndef OBJALLOC_CORE_CHECKPOINT_H_
#define OBJALLOC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "objalloc/core/wal.h"

namespace objalloc::core {

// On-disk record types of checkpoint and manifest files (persisted values;
// disjoint from WalRecordType so a misfiled buffer is caught immediately).
enum class CheckpointRecordType : uint8_t {
  kCkptHeader = 16,
  kServiceState = 17,
  kShard = 18,
  kCkptFooter = 19,
  kManifest = 32,
};

inline constexpr uint32_t kCheckpointMagic = 0x4b43414f;  // "OACK"
inline constexpr uint32_t kManifestMagic = 0x464d414f;    // "OAMF"
inline constexpr char kManifestFileName[] = "MANIFEST";

std::string CheckpointFileName(uint64_t sequence);

// Durability knobs (validated by ObjectService::EnableDurability).
struct DurabilityOptions {
  // fsync the WAL after every admitted batch (full write-ahead durability)
  // or only at checkpoints / explicit SyncDurable() calls (group commit —
  // a crash may lose the un-synced suffix, never consistency).
  bool sync_every_batch = false;
  // Take a checkpoint automatically after this many logged events
  // (0 = only on explicit Checkpoint() calls).
  size_t checkpoint_interval_events = 0;
  // Generations kept on disk; >= 2 so recovery can fall back one snapshot.
  int keep_generations = 2;

  util::Status Validate() const;
};

// The fsck-style account of a recovery (or dry-run verification) pass.
struct RecoveryReport {
  uint64_t manifest_sequence = 0;    // generation the manifest named
  uint64_t checkpoint_sequence = 0;  // generation actually loaded
  bool manifest_missing = false;
  bool manifest_corrupt = false;
  bool fell_back = false;            // newest snapshot unusable, used older
  size_t wal_files_replayed = 0;
  size_t records_replayed = 0;       // WAL records applied
  size_t batches_replayed = 0;
  size_t events_replayed = 0;
  size_t objects_restored = 0;
  bool torn_tail = false;            // newest WAL ended mid-record
  uint64_t torn_bytes_truncated = 0;
  std::vector<std::string> warnings;

  std::string ToString() const;
};

// Serializable image of the service-level fault/durability state (the
// parts of ObjectService outside the shards). Captured into a checkpoint's
// kServiceState record and restored on recovery.
struct ServiceStateImage {
  bool faults_enabled = false;
  FaultInjectorOptions injector_options;
  FaultSchedule schedule;
  uint64_t injector_cursor = 0;
  uint64_t live_mask = 0;
  CrashLog crash_log;
  FaultStats stats;

  void AppendTo(std::string* out) const;
  static util::StatusOr<ServiceStateImage> Parse(std::string_view payload);
};

// --- Manifest ----------------------------------------------------------

struct Manifest {
  uint64_t sequence = 0;
  DurableConfig config;
};

util::Status WriteManifest(const std::string& dir, const Manifest& manifest);
util::StatusOr<Manifest> ReadManifest(const std::string& dir);

// --- Checkpoint file assembly / parsing --------------------------------
// The service assembles a checkpoint into one buffer (header record,
// service-state record, one record per shard, footer with the shard count
// so truncation at a record boundary is still detected), then publishes it
// with util::WriteFileAtomic.

void BeginCheckpoint(uint64_t sequence, const DurableConfig& config,
                     std::string* out);
void AppendServiceStateRecord(const ServiceStateImage& image,
                              std::string* out);
void AppendShardRecord(std::string_view shard_payload, std::string* out);
void FinishCheckpoint(uint32_t shard_count, std::string* out);

struct LoadedCheckpoint {
  uint64_t sequence = 0;
  DurableConfig config;
  ServiceStateImage state;
  // One serialized payload per shard, in shard order; views into the
  // buffer passed to ParseCheckpoint (which must outlive them).
  std::vector<std::string_view> shards;
};

util::StatusOr<LoadedCheckpoint> ParseCheckpoint(std::string_view buffer);

// Durable generation files present in `dir` (by checkpoint file name),
// ascending. Used when the manifest itself is unreadable.
util::StatusOr<std::vector<uint64_t>> ListCheckpointSequences(
    const std::string& dir);

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_CHECKPOINT_H_
