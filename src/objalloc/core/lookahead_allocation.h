// LookaheadAllocation — a *semi-online* allocator charting the knowledge
// spectrum of §1.4 between the paper's two extremes: an online DOM
// algorithm (no future knowledge; DA, SA) and the offline OPT (all of it).
// With lookahead k, each request is decided by solving the exact allocation
// DP over the window of the next k requests (receding horizon) and keeping
// only the first decision.
//
//   k = 1  ≡ greedy myopic cost minimization,
//   k → schedule length ≡ the offline OPT.
//
// Because the window must be *peeked*, the schedule is supplied up front
// via Prime(); Step() then verifies the driver feeds the same requests.
// The bench (E18) measures how much competitive ratio each unit of
// lookahead buys.

#ifndef OBJALLOC_CORE_LOOKAHEAD_ALLOCATION_H_
#define OBJALLOC_CORE_LOOKAHEAD_ALLOCATION_H_

#include <optional>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/schedule.h"

namespace objalloc::core {

class LookaheadAllocation final : public DomAlgorithm {
 public:
  // `lookahead` >= 1 requests visible (including the current one).
  LookaheadAllocation(const model::CostModel& cost_model, int lookahead);

  // Supplies the request stream the driver will replay. Must be called
  // before Reset()/Step().
  void Prime(const model::Schedule& schedule);

  std::string name() const override;
  void Reset(int num_processors, ProcessorSet initial_scheme) override;
  Decision Step(const Request& request) override;
  std::unique_ptr<DomAlgorithm> Clone() const override {
    return std::make_unique<LookaheadAllocation>(*this);
  }

 private:
  model::CostModel cost_model_;
  int lookahead_;
  const model::Schedule* primed_ = nullptr;
  size_t position_ = 0;
  int t_ = 0;
  ProcessorSet scheme_;
};

}  // namespace objalloc::core

#endif  // OBJALLOC_CORE_LOOKAHEAD_ALLOCATION_H_
