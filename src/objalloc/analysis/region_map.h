// Region sweeps reproducing Figure 1 (SC) and Figure 2 (MC): for a grid of
// (cd, cc) points, measure the worst-case cost ratios of SA and DA against
// the exact OPT over an adversarial ensemble, decide the empirical winner,
// and compare with the paper's analytic classification.

#ifndef OBJALLOC_ANALYSIS_REGION_MAP_H_
#define OBJALLOC_ANALYSIS_REGION_MAP_H_

#include <string>
#include <vector>

#include "objalloc/analysis/competitive.h"
#include "objalloc/analysis/theorems.h"
#include "objalloc/util/csv.h"

namespace objalloc::analysis {

struct RegionPoint {
  double cc = 0;
  double cd = 0;
  Region analytic = Region::kUnknown;
  double sa_worst_ratio = 0;  // +inf possible in MC
  double da_worst_ratio = 0;
  double sa_mean_ratio = 0;
  double da_mean_ratio = 0;
  // Which algorithm measured better (smaller worst ratio) at this point.
  Region empirical = Region::kUnknown;
};

struct RegionSweepOptions {
  bool mobile = false;            // false: Figure 1 (SC); true: Figure 2 (MC)
  std::vector<double> cd_values;  // x axis
  std::vector<double> cc_values;  // y axis; points with cc > cd are skipped
  RatioOptions ratio;

  // The paper's figures span cd in [0, 2], cc in [0, 1+].
  static RegionSweepOptions PaperGrid(bool mobile);
};

// Runs the sweep. Each grid point measures SA and DA over the worst-case
// ensemble, sharing one exact-OPT computation per schedule.
std::vector<RegionPoint> SweepRegions(const RegionSweepOptions& options);

// One row per grid point: cd, cc, analytic region, worst/mean ratios,
// empirical winner, agreement flag.
util::Table RegionTable(const std::vector<RegionPoint>& points);

// Two ASCII maps in the paper's layout (y = cc up, x = cd right): the
// analytic regions and the empirically measured winners.
std::string RenderAnalyticMap(const RegionSweepOptions& options);
std::string RenderEmpiricalMap(const RegionSweepOptions& options,
                               const std::vector<RegionPoint>& points);

}  // namespace objalloc::analysis

#endif  // OBJALLOC_ANALYSIS_REGION_MAP_H_
