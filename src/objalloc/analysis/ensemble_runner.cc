#include "objalloc/analysis/ensemble_runner.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "objalloc/core/runner.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/rng.h"

namespace objalloc::analysis {

namespace {

double RatioOf(double cost, double opt_cost) {
  if (opt_cost == 0) {
    return cost == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return cost / opt_cost;
}

}  // namespace

EnsembleSummary RunEnsemble(const std::vector<EnsembleUnit>& units,
                            const EnsembleOptions& options) {
  OBJALLOC_CHECK_GT(options.replications, 0);
  for (const EnsembleUnit& unit : units) {
    OBJALLOC_CHECK(unit.generator != nullptr) << unit.label;
    OBJALLOC_CHECK(unit.algorithm != nullptr) << unit.label;
    OBJALLOC_CHECK(unit.cost_model.Validate().ok()) << unit.label;
    OBJALLOC_CHECK_GE(unit.t, 1) << unit.label;
    OBJALLOC_CHECK_LE(unit.t, unit.num_processors) << unit.label;
    if (unit.measure_opt) {
      OBJALLOC_CHECK_LE(unit.num_processors, opt::kMaxExactOptProcessors)
          << unit.label;
    }
  }

  const size_t reps = static_cast<size_t>(options.replications);
  EnsembleSummary summary;
  summary.outcomes.resize(units.size() * reps);

  util::ParallelFor(
      0, summary.outcomes.size(), 1,
      [&](size_t lo, size_t hi) {
        for (size_t task = lo; task < hi; ++task) {
          const EnsembleUnit& unit = units[task / reps];
          const uint64_t seed = util::SubSeed(options.base_seed, task);
          const model::ProcessorSet initial =
              model::ProcessorSet::FirstN(unit.t);
          model::Schedule schedule = unit.generator->Generate(
              unit.num_processors, unit.schedule_length, seed);

          EnsembleOutcome& outcome = summary.outcomes[task];
          outcome.label = unit.label;
          outcome.seed = seed;
          std::unique_ptr<core::DomAlgorithm> algorithm =
              unit.algorithm->Clone();
          outcome.cost =
              core::RunWithCost(*algorithm, unit.cost_model, schedule,
                                initial)
                  .cost;
          if (unit.measure_opt) {
            outcome.opt_cost =
                opt::ExactOptCost(unit.cost_model, schedule, initial);
            outcome.ratio = RatioOf(outcome.cost, outcome.opt_cost);
          }
        }
      },
      options.parallel);

  summary.aggregates.reserve(units.size());
  for (size_t u = 0; u < units.size(); ++u) {
    EnsembleAggregate aggregate;
    aggregate.label = units[u].label;
    aggregate.replications = options.replications;
    for (size_t r = 0; r < reps; ++r) {
      const EnsembleOutcome& outcome = summary.outcomes[u * reps + r];
      aggregate.mean_cost += outcome.cost;
      aggregate.mean_ratio += outcome.ratio;
      aggregate.worst_ratio = std::max(aggregate.worst_ratio, outcome.ratio);
    }
    aggregate.mean_cost /= static_cast<double>(reps);
    aggregate.mean_ratio /= static_cast<double>(reps);
    summary.aggregates.push_back(std::move(aggregate));
  }
  return summary;
}

}  // namespace objalloc::analysis
