#include "objalloc/analysis/report.h"

namespace objalloc::analysis {

void PrintExperimentHeader(std::ostream& os, const std::string& id,
                           const std::string& title) {
  os << "\n==== " << id << ": " << title << " ====\n";
}

void PrintPaperVsMeasured(std::ostream& os, const std::string& claim,
                          const std::string& measured, bool reproduced) {
  os << "  paper:    " << claim << "\n";
  os << "  measured: " << measured << "\n";
  os << "  verdict:  " << (reproduced ? "REPRODUCED" : "NOT REPRODUCED")
     << "\n";
}

}  // namespace objalloc::analysis
