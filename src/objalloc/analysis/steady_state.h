// Average-case (steady-state) cost analysis — a complement to the paper's
// worst-case competitive analysis, for the symmetric workload model:
// requests are i.i.d., a read with probability `read_fraction`, issued by a
// uniformly random processor.
//
//   * SA has a closed-form expected cost per request (the scheme is fixed).
//   * DA's allocation scheme evolves; under the symmetric workload it forms
//     a finite Markov chain over states (who the floating member is: p as
//     the core floater, p evicted, or p re-joined as a reader) x (number of
//     outsider replicas). The expected cost per request is computed from
//     the chain's stationary distribution — exactly, not by simulation.
//
// The test suite validates both predictions against long-run averages of
// the actual algorithms, and the steady_state bench prints the resulting
// SA/DA break-even read fractions across the (cc, cd) plane.

#ifndef OBJALLOC_ANALYSIS_STEADY_STATE_H_
#define OBJALLOC_ANALYSIS_STEADY_STATE_H_

#include "objalloc/model/cost_model.h"
#include "objalloc/util/status.h"

namespace objalloc::analysis {

struct SymmetricWorkload {
  int num_processors = 8;
  double read_fraction = 0.8;  // probability a request is a read

  util::Status Validate(int t) const;
};

// Expected cost per request of read-one-write-all SA with a fixed scheme of
// size t (closed form).
double SaExpectedCostPerRequest(const model::CostModel& cost_model,
                                const SymmetricWorkload& workload, int t);

// Expected cost per request of DA with |F| = t-1, from the stationary
// distribution of its scheme-evolution Markov chain.
double DaExpectedCostPerRequest(const model::CostModel& cost_model,
                                const SymmetricWorkload& workload, int t);

// The read-fraction band where SA's expected cost is below DA's. The gap
// DA - SA is generally *not* monotone: DA is cheaper at both extremes (an
// outside write stores the new version at the writer, saving one transfer
// versus read-one-write-all; saving-reads make read-dominated traffic
// local), while SA can win in the mixed middle where frequent writes turn
// DA's saving-reads into join-churn. Empty when DA dominates everywhere.
struct ReadFractionInterval {
  double lo = 0;
  double hi = 0;
  bool empty = true;
};
ReadFractionInterval SaFavorableReadFractions(
    const model::CostModel& cost_model, int num_processors, int t);

}  // namespace objalloc::analysis

#endif  // OBJALLOC_ANALYSIS_STEADY_STATE_H_
