#include "objalloc/analysis/theorems.h"

#include "objalloc/util/logging.h"

namespace objalloc::analysis {

std::optional<double> SaCompetitiveFactor(const CostModel& cost_model) {
  if (cost_model.is_mobile()) return std::nullopt;  // Proposition 3
  // Theorem 1 (with cio normalized into the cc/cd units).
  return 1.0 + (cost_model.control + cost_model.data) / cost_model.io;
}

double DaCompetitiveFactor(const CostModel& cost_model) {
  const double cc = cost_model.control;
  const double cd = cost_model.data;
  if (cost_model.is_mobile()) {
    if (cd == 0) return 1.0;  // all costs are zero
    return 2.0 + 3.0 * cc / cd;  // Theorem 4
  }
  const double cio = cost_model.io;
  if (cd > cio) return 2.0 + cc / cio;  // Theorem 3
  return 2.0 + 2.0 * cc / cio;          // Theorem 2
}

const char* RegionToString(Region region) {
  switch (region) {
    case Region::kCannotBeTrue:
      return "cannot-be-true";
    case Region::kSaSuperior:
      return "SA-superior";
    case Region::kDaSuperior:
      return "DA-superior";
    case Region::kUnknown:
      return "unknown";
  }
  return "?";
}

char RegionSymbol(Region region) {
  switch (region) {
    case Region::kCannotBeTrue:
      return 'x';
    case Region::kSaSuperior:
      return 'S';
    case Region::kDaSuperior:
      return 'D';
    case Region::kUnknown:
      return '?';
  }
  return '.';
}

Region ClassifyStationary(double cc, double cd) {
  if (cc > cd) return Region::kCannotBeTrue;
  if (cd > 1.0) return Region::kDaSuperior;
  if (cc + cd < 0.5) return Region::kSaSuperior;
  return Region::kUnknown;
}

Region ClassifyMobile(double cc, double cd) {
  if (cc > cd) return Region::kCannotBeTrue;
  return Region::kDaSuperior;
}

Region Classify(const CostModel& cost_model) {
  OBJALLOC_CHECK(cost_model.Validate().ok());
  if (cost_model.is_mobile()) {
    return ClassifyMobile(cost_model.control, cost_model.data);
  }
  // Normalize by cio so the SC classification matches the paper's cio = 1.
  return ClassifyStationary(cost_model.control / cost_model.io,
                            cost_model.data / cost_model.io);
}

}  // namespace objalloc::analysis
