// Reporting helpers shared by the bench harnesses: consistent experiment
// headers and paper-vs-measured verdict lines.

#ifndef OBJALLOC_ANALYSIS_REPORT_H_
#define OBJALLOC_ANALYSIS_REPORT_H_

#include <ostream>
#include <string>

namespace objalloc::analysis {

// "==== <id>: <title> ====" banner plus free-form context lines.
void PrintExperimentHeader(std::ostream& os, const std::string& id,
                           const std::string& title);

// "  paper: <claim>" / "  measured: <result>" / "  verdict: REPRODUCED|..."
void PrintPaperVsMeasured(std::ostream& os, const std::string& claim,
                          const std::string& measured, bool reproduced);

}  // namespace objalloc::analysis

#endif  // OBJALLOC_ANALYSIS_REPORT_H_
