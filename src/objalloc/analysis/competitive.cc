#include "objalloc/analysis/competitive.h"

#include <limits>

#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/logging.h"

namespace objalloc::analysis {

util::Status RatioOptions::Validate() const {
  if (num_processors < 2 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  if (t < 2 || t >= num_processors) {
    return util::Status::InvalidArgument(
        "t must satisfy 2 <= t < num_processors");
  }
  if (num_processors > opt::kMaxExactOptProcessors) {
    return util::Status::InvalidArgument(
        "exact OPT is limited to small systems; reduce num_processors");
  }
  if (schedule_length == 0 || seeds_per_generator <= 0) {
    return util::Status::InvalidArgument("empty measurement");
  }
  return util::Status::Ok();
}

double RatioOnSchedule(DomAlgorithm& algorithm, const CostModel& cost_model,
                       const Schedule& schedule,
                       ProcessorSet initial_scheme) {
  core::RunResult run =
      core::RunWithCost(algorithm, cost_model, schedule, initial_scheme);
  double opt_cost = opt::ExactOptCost(cost_model, schedule, initial_scheme);
  if (opt_cost == 0) {
    return run.cost == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return run.cost / opt_cost;
}

RatioSummary MeasureCompetitiveRatio(
    DomAlgorithm& algorithm, const CostModel& cost_model,
    const std::vector<std::unique_ptr<workload::ScheduleGenerator>>&
        generators,
    const RatioOptions& options) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();

  const ProcessorSet initial = ProcessorSet::FirstN(options.t);
  RatioSummary summary;
  summary.algorithm = algorithm.name();
  summary.cost_model = cost_model;
  summary.worst.ratio = -1;
  double ratio_sum = 0;

  uint64_t seed_state = options.base_seed;
  for (const auto& generator : generators) {
    for (int s = 0; s < options.seeds_per_generator; ++s) {
      const uint64_t seed = util::SplitMix64(seed_state);
      Schedule schedule = generator->Generate(
          options.num_processors, options.schedule_length, seed);
      if (schedule.empty()) continue;

      core::RunResult run =
          core::RunWithCost(algorithm, cost_model, schedule, initial);
      double opt_cost = opt::ExactOptCost(cost_model, schedule, initial);

      RatioSample sample;
      sample.generator = generator->name();
      sample.seed = seed;
      sample.algorithm_cost = run.cost;
      sample.opt_cost = opt_cost;
      if (opt_cost == 0) {
        sample.ratio = run.cost == 0
                           ? 1.0
                           : std::numeric_limits<double>::infinity();
      } else {
        sample.ratio = run.cost / opt_cost;
      }
      ratio_sum += sample.ratio;
      if (sample.ratio > summary.worst.ratio) summary.worst = sample;
      summary.samples.push_back(std::move(sample));
    }
  }
  OBJALLOC_CHECK(!summary.samples.empty());
  summary.mean_ratio = ratio_sum / static_cast<double>(summary.samples.size());
  return summary;
}

}  // namespace objalloc::analysis
