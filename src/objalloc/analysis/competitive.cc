#include "objalloc/analysis/competitive.h"

#include <limits>
#include <utility>

#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"

namespace objalloc::analysis {

util::Status RatioOptions::Validate() const {
  if (num_processors < 2 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  if (t < 2 || t >= num_processors) {
    return util::Status::InvalidArgument(
        "t must satisfy 2 <= t < num_processors");
  }
  if (num_processors > opt::kMaxExactOptProcessors) {
    return util::Status::InvalidArgument(
        "exact OPT is limited to small systems; reduce num_processors");
  }
  if (schedule_length == 0 || seeds_per_generator <= 0) {
    return util::Status::InvalidArgument("empty measurement");
  }
  return util::Status::Ok();
}

double RatioOnSchedule(DomAlgorithm& algorithm, const CostModel& cost_model,
                       const Schedule& schedule,
                       ProcessorSet initial_scheme) {
  core::RunResult run =
      core::RunWithCost(algorithm, cost_model, schedule, initial_scheme);
  double opt_cost = opt::ExactOptCost(cost_model, schedule, initial_scheme);
  if (opt_cost == 0) {
    return run.cost == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return run.cost / opt_cost;
}

RatioSummary MeasureCompetitiveRatio(
    DomAlgorithm& algorithm, const CostModel& cost_model,
    const std::vector<std::unique_ptr<workload::ScheduleGenerator>>&
        generators,
    const RatioOptions& options) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  OBJALLOC_CHECK(cost_model.Validate().ok()) << cost_model.ToString();

  const ProcessorSet initial = ProcessorSet::FirstN(options.t);
  RatioSummary summary;
  summary.algorithm = algorithm.name();
  summary.cost_model = cost_model;
  summary.worst.ratio = -1;

  // The seed chain is walked serially up front (it is the measurement's
  // identity); the expensive part — one online run plus one exact-OPT DP per
  // sample — then fans across the pool. Each unit clones the algorithm and
  // writes only its own slot, so the summary is bit-identical at any thread
  // count.
  std::vector<std::pair<size_t, uint64_t>> units;  // (generator idx, seed)
  uint64_t seed_state = options.base_seed;
  for (size_t g = 0; g < generators.size(); ++g) {
    for (int s = 0; s < options.seeds_per_generator; ++s) {
      units.emplace_back(g, util::SplitMix64(seed_state));
    }
  }

  std::vector<RatioSample> results(units.size());
  std::vector<char> valid(units.size(), 0);
  util::ParallelFor(0, units.size(), 1, [&](size_t lo, size_t hi) {
    std::unique_ptr<core::DomAlgorithm> local = algorithm.Clone();
    for (size_t u = lo; u < hi; ++u) {
      const auto& generator = generators[units[u].first];
      const uint64_t seed = units[u].second;
      Schedule schedule = generator->Generate(
          options.num_processors, options.schedule_length, seed);
      if (schedule.empty()) continue;

      core::RunResult run =
          core::RunWithCost(*local, cost_model, schedule, initial);
      double opt_cost = opt::ExactOptCost(cost_model, schedule, initial);

      RatioSample sample;
      sample.generator = generator->name();
      sample.seed = seed;
      sample.algorithm_cost = run.cost;
      sample.opt_cost = opt_cost;
      if (opt_cost == 0) {
        sample.ratio = run.cost == 0
                           ? 1.0
                           : std::numeric_limits<double>::infinity();
      } else {
        sample.ratio = run.cost / opt_cost;
      }
      results[u] = std::move(sample);
      valid[u] = 1;
    }
  });

  double ratio_sum = 0;
  for (size_t u = 0; u < units.size(); ++u) {
    if (!valid[u]) continue;
    ratio_sum += results[u].ratio;
    if (results[u].ratio > summary.worst.ratio) summary.worst = results[u];
    summary.samples.push_back(std::move(results[u]));
  }
  OBJALLOC_CHECK(!summary.samples.empty());
  summary.mean_ratio = ratio_sum / static_cast<double>(summary.samples.size());
  return summary;
}

}  // namespace objalloc::analysis
