// EnsembleRunner: fans a vector of (workload × cost model × algorithm)
// configurations across the thread pool.
//
// Each unit of work is one replication of one configuration: generate a
// schedule from a sub-seed, run the algorithm over it, and (optionally)
// compute the exact-OPT cost for a ratio. Sub-seeds are derived as
// SubSeed(base_seed, global_replication_index), so every replication's
// result depends only on the configuration list and the base seed — never
// on the thread count or scheduling order. Aggregates are reduced in
// replication order and are therefore bit-identical across thread counts.

#ifndef OBJALLOC_ANALYSIS_ENSEMBLE_RUNNER_H_
#define OBJALLOC_ANALYSIS_ENSEMBLE_RUNNER_H_

#include <string>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/generator.h"

namespace objalloc::analysis {

// One configuration to replicate. `generator` and `algorithm` are non-owning
// prototypes that must outlive RunEnsemble; the algorithm is cloned per
// concurrent unit and never mutated.
struct EnsembleUnit {
  std::string label;
  const workload::ScheduleGenerator* generator = nullptr;
  const core::DomAlgorithm* algorithm = nullptr;
  model::CostModel cost_model;
  int num_processors = 6;
  size_t schedule_length = 100;
  int t = 2;  // initial scheme {0..t-1}
  // Also run the exact-OPT DP per replication (bounds num_processors by
  // opt::kMaxExactOptProcessors).
  bool measure_opt = true;
};

struct EnsembleOptions {
  uint64_t base_seed = 0x0b9ec7;
  int replications = 1;  // schedules per unit
  util::ParallelOptions parallel;
};

// One replication's measurement. `ratio` follows the library convention:
// cost/opt, 1.0 when both are zero, +inf when only opt is zero; 0 when the
// unit did not measure OPT.
struct EnsembleOutcome {
  std::string label;
  uint64_t seed = 0;
  double cost = 0;
  double opt_cost = 0;
  double ratio = 0;
};

// Per-unit reduction over its replications, in replication order.
struct EnsembleAggregate {
  std::string label;
  int replications = 0;
  double mean_cost = 0;
  double mean_ratio = 0;   // 0 when the unit did not measure OPT
  double worst_ratio = 0;
};

struct EnsembleSummary {
  // Unit-major, replication-minor; outcomes[u * replications + r].
  std::vector<EnsembleOutcome> outcomes;
  std::vector<EnsembleAggregate> aggregates;  // one per unit
};

EnsembleSummary RunEnsemble(const std::vector<EnsembleUnit>& units,
                            const EnsembleOptions& options);

}  // namespace objalloc::analysis

#endif  // OBJALLOC_ANALYSIS_ENSEMBLE_RUNNER_H_
