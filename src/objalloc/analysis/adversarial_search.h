// Adversarial schedule search: a randomized hill climber that *maximizes*
// an online algorithm's cost ratio against the exact offline OPT by
// mutating schedules (flip a request's kind, retarget its issuer, insert,
// delete, or duplicate a request).
//
// Purpose: the paper's Figure 1 leaves an "Unknown" band because DA's lower
// bound (1.5) and upper bound (2 + 2cc) do not meet; the search probes that
// gap empirically — the best schedule found is a *certified* lower bound on
// DA's competitive factor at that (cc, cd) (the ratio is measured against
// the exact OPT), while the theorems cap it from above.

#ifndef OBJALLOC_ANALYSIS_ADVERSARIAL_SEARCH_H_
#define OBJALLOC_ANALYSIS_ADVERSARIAL_SEARCH_H_

#include <string>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/model/schedule.h"
#include "objalloc/util/status.h"

namespace objalloc::analysis {

struct SearchOptions {
  int num_processors = 6;   // small: the exact OPT runs per candidate
  int t = 2;
  size_t schedule_length = 60;  // initial length; mutations may grow it
  size_t max_length = 120;
  int iterations = 400;      // mutation attempts
  int restarts = 3;          // independent climbs from fresh seeds
  uint64_t seed = 0xadae;

  util::Status Validate() const;
};

struct SearchResult {
  double best_ratio = 0;
  model::Schedule best_schedule{1};
  int64_t evaluations = 0;
};

// Climbs toward the schedule maximizing COST_alg / COST_OPT for `algorithm`
// under `cost_model`. The algorithm object is Reset per evaluation.
SearchResult FindAdversarialSchedule(core::DomAlgorithm& algorithm,
                                     const model::CostModel& cost_model,
                                     const SearchOptions& options);

}  // namespace objalloc::analysis

#endif  // OBJALLOC_ANALYSIS_ADVERSARIAL_SEARCH_H_
