#include "objalloc/analysis/adversarial_search.h"

#include <vector>

#include "objalloc/analysis/competitive.h"
#include "objalloc/core/runner.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"
#include "objalloc/util/rng.h"
#include "objalloc/workload/adversary.h"
#include "objalloc/workload/uniform.h"

namespace objalloc::analysis {

namespace {

using model::Request;
using model::Schedule;

Schedule Mutate(const Schedule& schedule, size_t max_length,
                util::Rng& rng) {
  std::vector<Request> requests = schedule.requests();
  const int n = schedule.num_processors();
  auto random_request = [&]() {
    auto p = static_cast<util::ProcessorId>(
        rng.NextBounded(static_cast<uint64_t>(n)));
    return rng.NextBernoulli(0.7) ? Request::Read(p) : Request::Write(p);
  };
  switch (rng.NextBounded(5)) {
    case 0: {  // flip a request's kind
      if (requests.empty()) break;
      Request& victim = requests[rng.NextBounded(requests.size())];
      victim.kind = victim.is_read() ? model::RequestKind::kWrite
                                     : model::RequestKind::kRead;
      break;
    }
    case 1: {  // retarget an issuer
      if (requests.empty()) break;
      Request& victim = requests[rng.NextBounded(requests.size())];
      victim.processor = static_cast<util::ProcessorId>(
          rng.NextBounded(static_cast<uint64_t>(n)));
      break;
    }
    case 2: {  // insert
      if (requests.size() >= max_length) break;
      size_t at = rng.NextBounded(requests.size() + 1);
      requests.insert(requests.begin() + static_cast<ptrdiff_t>(at),
                      random_request());
      break;
    }
    case 3: {  // delete
      if (requests.size() <= 2) break;
      size_t at = rng.NextBounded(requests.size());
      requests.erase(requests.begin() + static_cast<ptrdiff_t>(at));
      break;
    }
    case 4: {  // duplicate a short block (amplifies whatever hurts)
      if (requests.empty() || requests.size() + 4 > max_length) break;
      size_t at = rng.NextBounded(requests.size());
      size_t block = 1 + rng.NextBounded(4);
      block = std::min(block, requests.size() - at);
      std::vector<Request> copy(requests.begin() + static_cast<ptrdiff_t>(at),
                                requests.begin() +
                                    static_cast<ptrdiff_t>(at + block));
      requests.insert(requests.begin() + static_cast<ptrdiff_t>(at + block),
                      copy.begin(), copy.end());
      break;
    }
  }
  return Schedule(n, std::move(requests));
}

}  // namespace

util::Status SearchOptions::Validate() const {
  if (num_processors < 3 || num_processors > opt::kMaxExactOptProcessors) {
    return util::Status::InvalidArgument(
        "search needs 3 <= n <= exact-OPT limit");
  }
  if (t < 2 || t >= num_processors) {
    return util::Status::InvalidArgument("need 2 <= t < n");
  }
  if (schedule_length < 2 || schedule_length > max_length) {
    return util::Status::InvalidArgument("bad length bounds");
  }
  if (iterations <= 0 || restarts <= 0) {
    return util::Status::InvalidArgument("empty search");
  }
  return util::Status::Ok();
}

SearchResult FindAdversarialSchedule(core::DomAlgorithm& algorithm,
                                     const model::CostModel& cost_model,
                                     const SearchOptions& options) {
  OBJALLOC_CHECK(options.Validate().ok()) << options.Validate().ToString();
  OBJALLOC_CHECK(cost_model.Validate().ok());
  const model::ProcessorSet initial =
      model::ProcessorSet::FirstN(options.t);

  // Restarts are independent climbs: each derives its own RNG stream from
  // (seed, restart index) and clones the algorithm, so they fan across the
  // pool and the outcome is independent of the thread count.
  std::vector<SearchResult> climbs(static_cast<size_t>(options.restarts));
  util::ParallelFor(
      0, climbs.size(), 1, [&](size_t lo, size_t hi) {
        for (size_t restart = lo; restart < hi; ++restart) {
          util::Rng rng(util::SubSeed(options.seed, restart));
          std::unique_ptr<core::DomAlgorithm> climber = algorithm.Clone();
          SearchResult& result = climbs[restart];
          result.best_schedule = Schedule(options.num_processors);

          auto evaluate = [&](const Schedule& schedule) {
            ++result.evaluations;
            if (schedule.empty()) return 0.0;
            return RatioOnSchedule(*climber, cost_model, schedule, initial);
          };

          // Seeds: the known nemeses plus a random mix, round-robin.
          Schedule current(options.num_processors);
          switch (restart % 3) {
            case 0:
              current = workload::DaNemesis(options.t, 4).Generate(
                  options.num_processors, options.schedule_length,
                  rng.Next());
              break;
            case 1:
              current = workload::SaNemesis(options.t).Generate(
                  options.num_processors, options.schedule_length,
                  rng.Next());
              break;
            default:
              current = workload::UniformWorkload(0.7).Generate(
                  options.num_processors, options.schedule_length,
                  rng.Next());
              break;
          }
          double current_ratio = evaluate(current);
          result.best_ratio = current_ratio;
          result.best_schedule = current;
          for (int iteration = 0; iteration < options.iterations;
               ++iteration) {
            Schedule candidate = Mutate(current, options.max_length, rng);
            double ratio = evaluate(candidate);
            if (ratio >= current_ratio) {  // plateau moves keep the climb
              current = std::move(candidate);
              current_ratio = ratio;
              if (ratio > result.best_ratio) {
                result.best_ratio = ratio;
                result.best_schedule = current;
              }
            }
          }
        }
      });

  // Deterministic reduction in restart order; strict '>' keeps the earliest
  // climb on ties, matching the serial update rule.
  SearchResult result;
  result.best_schedule = Schedule(options.num_processors);
  for (const SearchResult& climb : climbs) {
    result.evaluations += climb.evaluations;
    if (climb.best_ratio > result.best_ratio) {
      result.best_ratio = climb.best_ratio;
      result.best_schedule = climb.best_schedule;
    }
  }
  return result;
}

}  // namespace objalloc::analysis
