// The paper's analytic results (Theorems 1-4, Propositions 1-3) as code:
// competitive factors, superiority regions, and the Figure 1 / Figure 2
// classification. Every constant here is checked against measured ratios by
// the test suite and the bench harness.

#ifndef OBJALLOC_ANALYSIS_THEOREMS_H_
#define OBJALLOC_ANALYSIS_THEOREMS_H_

#include <optional>
#include <string>

#include "objalloc/model/cost_model.h"

namespace objalloc::analysis {

using model::CostModel;

// Theorem 1: SA is (1 + cc + cd)-competitive in SC — and this is tight
// (Proposition 1). In MC, SA is not competitive (Proposition 3), so the
// factor is unbounded; returns nullopt.
std::optional<double> SaCompetitiveFactor(const CostModel& cost_model);

// Theorem 2 / Theorem 3: DA is (2 + 2cc)-competitive in SC, improved to
// (2 + cc) when cd > cio. Theorem 4: DA is (2 + 3*cc/cd)-competitive in MC
// (at most 5 since cc <= cd); cc = cd = 0 in MC means every schedule is
// free, reported as factor 1.
double DaCompetitiveFactor(const CostModel& cost_model);

// Proposition 2: DA is not alpha-competitive for alpha < 1.5.
inline constexpr double kDaLowerBound = 1.5;

// The regions of the (cd, cc) plane in Figures 1 and 2.
enum class Region {
  kCannotBeTrue,  // cc > cd: a data message carries strictly more
  kSaSuperior,    // SA's upper bound beats DA's lower bound
  kDaSuperior,    // DA's upper bound beats SA's (tight) lower bound
  kUnknown,       // the gap between DA's bounds leaves the order open
};

const char* RegionToString(Region region);
char RegionSymbol(Region region);

// Figure 1 (stationary computing):
//   cc > cd        -> kCannotBeTrue
//   cd > 1         -> kDaSuperior   (1 + cc + cd > 2 + cc, Theorems 1, 3)
//   cc + cd < 0.5  -> kSaSuperior   (1 + cc + cd < 1.5, Prop. 2)
//   otherwise      -> kUnknown
Region ClassifyStationary(double cc, double cd);

// Figure 2 (mobile computing): DA is superior whenever cc <= cd (SA is not
// competitive at all, Proposition 3 + Theorem 4).
Region ClassifyMobile(double cc, double cd);

Region Classify(const CostModel& cost_model);

}  // namespace objalloc::analysis

#endif  // OBJALLOC_ANALYSIS_THEOREMS_H_
