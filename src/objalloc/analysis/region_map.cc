#include "objalloc/analysis/region_map.h"

#include <cmath>
#include <limits>

#include "objalloc/core/dynamic_allocation.h"
#include "objalloc/core/static_allocation.h"
#include "objalloc/opt/exact_opt.h"
#include "objalloc/util/ascii_plot.h"
#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"
#include "objalloc/workload/ensemble.h"

namespace objalloc::analysis {

namespace {

double SafeRatio(double cost, double opt_cost) {
  if (opt_cost == 0) {
    return cost == 0 ? 1.0 : std::numeric_limits<double>::infinity();
  }
  return cost / opt_cost;
}

std::string RatioLabel(double ratio) {
  if (std::isinf(ratio)) return "inf";
  return util::FormatDouble(ratio, 3);
}

}  // namespace

RegionSweepOptions RegionSweepOptions::PaperGrid(bool mobile) {
  RegionSweepOptions options;
  options.mobile = mobile;
  options.cd_values = {0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7,
                       0.9,  1.1, 1.4, 1.7, 2.0};
  options.cc_values = {0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0};
  return options;
}

std::vector<RegionPoint> SweepRegions(const RegionSweepOptions& options) {
  OBJALLOC_CHECK(options.ratio.Validate().ok())
      << options.ratio.Validate().ToString();
  const ProcessorSet initial = ProcessorSet::FirstN(options.ratio.t);

  // Grid cells are independent measurements (the per-cell seed chain always
  // restarts from base_seed), so the sweep fans cells across the pool; each
  // cell owns its generators and algorithm instances, and writes only its
  // own slot. Results are bit-identical at any thread count.
  std::vector<std::pair<double, double>> cells;  // (cd, cc)
  for (double cd : options.cd_values) {
    for (double cc : options.cc_values) {
      if (cc > cd) continue;  // cannot be true
      cells.emplace_back(cd, cc);
    }
  }

  std::vector<RegionPoint> points(cells.size());
  util::ParallelFor(0, cells.size(), 1, [&](size_t lo, size_t hi) {
    auto generators = workload::WorstCaseEnsemble(options.ratio.t);
    core::StaticAllocation sa;
    core::DynamicAllocation da;
    for (size_t cell = lo; cell < hi; ++cell) {
      const double cd = cells[cell].first;
      const double cc = cells[cell].second;
      const CostModel cost_model = options.mobile
                                       ? CostModel::MobileComputing(cc, cd)
                                       : CostModel::StationaryComputing(cc, cd);
      RegionPoint point;
      point.cc = cc;
      point.cd = cd;
      point.analytic = Classify(cost_model);

      double sa_worst = 0, da_worst = 0, sa_sum = 0, da_sum = 0;
      int count = 0;
      uint64_t seed_state = options.ratio.base_seed;
      for (const auto& generator : generators) {
        for (int s = 0; s < options.ratio.seeds_per_generator; ++s) {
          const uint64_t seed = util::SplitMix64(seed_state);
          Schedule schedule =
              generator->Generate(options.ratio.num_processors,
                                  options.ratio.schedule_length, seed);
          // One OPT evaluation serves both algorithms.
          double opt_cost =
              opt::ExactOptCost(cost_model, schedule, initial);
          double sa_cost =
              core::RunWithCost(sa, cost_model, schedule, initial).cost;
          double da_cost =
              core::RunWithCost(da, cost_model, schedule, initial).cost;
          double sa_ratio = SafeRatio(sa_cost, opt_cost);
          double da_ratio = SafeRatio(da_cost, opt_cost);
          sa_worst = std::max(sa_worst, sa_ratio);
          da_worst = std::max(da_worst, da_ratio);
          sa_sum += sa_ratio;
          da_sum += da_ratio;
          ++count;
        }
      }
      point.sa_worst_ratio = sa_worst;
      point.da_worst_ratio = da_worst;
      point.sa_mean_ratio = sa_sum / count;
      point.da_mean_ratio = da_sum / count;
      point.empirical = sa_worst <= da_worst ? Region::kSaSuperior
                                             : Region::kDaSuperior;
      points[cell] = point;
    }
  });
  return points;
}

util::Table RegionTable(const std::vector<RegionPoint>& points) {
  util::Table table({"cd", "cc", "analytic", "SA_worst", "DA_worst",
                     "SA_mean", "DA_mean", "empirical_winner", "consistent"});
  for (const RegionPoint& p : points) {
    // Consistency: wherever the paper decides a winner, the measurement
    // must agree; in the unknown band any winner is consistent.
    bool consistent = true;
    if (p.analytic == Region::kSaSuperior ||
        p.analytic == Region::kDaSuperior) {
      consistent = p.analytic == p.empirical;
    }
    table.AddRow()
        .Cell(p.cd, 2)
        .Cell(p.cc, 2)
        .Cell(RegionToString(p.analytic))
        .Cell(RatioLabel(p.sa_worst_ratio))
        .Cell(RatioLabel(p.da_worst_ratio))
        .Cell(RatioLabel(p.sa_mean_ratio))
        .Cell(RatioLabel(p.da_mean_ratio))
        .Cell(RegionToString(p.empirical))
        .Cell(consistent ? "yes" : "NO");
  }
  return table;
}

std::string RenderAnalyticMap(const RegionSweepOptions& options) {
  const double x_hi = options.cd_values.back() * 1.05;
  const double y_hi = options.cc_values.back() * 1.05;
  util::RegionPlot plot(0, x_hi, 0, y_hi, 60, 16);
  plot.AddLegend('S', "SA superior");
  plot.AddLegend('D', "DA superior");
  plot.AddLegend('?', "unknown");
  plot.AddLegend('x', "cannot be true (cc > cd)");
  const bool mobile = options.mobile;
  return plot.Render([mobile](double x, double y) {
    return RegionSymbol(mobile ? ClassifyMobile(y, x)
                               : ClassifyStationary(y, x));
  });
}

std::string RenderEmpiricalMap(const RegionSweepOptions& options,
                               const std::vector<RegionPoint>& points) {
  const double x_hi = options.cd_values.back() * 1.05;
  const double y_hi = options.cc_values.back() * 1.05;
  util::RegionPlot plot(0, x_hi, 0, y_hi, 60, 16);
  plot.AddLegend('S', "SA measured better");
  plot.AddLegend('D', "DA measured better");
  plot.AddLegend('x', "cannot be true (cc > cd)");
  return plot.Render([&points](double x, double y) {
    if (y > x) return 'x';
    // Nearest measured grid point.
    double best_dist = std::numeric_limits<double>::infinity();
    Region region = Region::kUnknown;
    for (const RegionPoint& p : points) {
      double dist = (p.cd - x) * (p.cd - x) + (p.cc - y) * (p.cc - y);
      if (dist < best_dist) {
        best_dist = dist;
        region = p.empirical;
      }
    }
    return RegionSymbol(region);
  });
}

}  // namespace objalloc::analysis
