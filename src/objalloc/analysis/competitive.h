// Empirical competitive-ratio measurement (§4.1).
//
// An algorithm A is α-competitive when COST_A(I, ψ) <= α * COST_OPT(I, ψ) + β
// for every schedule ψ. We estimate the competitive factor of an online
// algorithm by maximizing the measured ratio COST_A / COST_OPT over an
// ensemble of adversarial and random schedules, with OPT computed exactly by
// the subset DP. For systems too large for the exact DP, bracket ratios are
// reported against the relaxation lower bound (overestimates the ratio) and
// the interval heuristic (underestimates it).

#ifndef OBJALLOC_ANALYSIS_COMPETITIVE_H_
#define OBJALLOC_ANALYSIS_COMPETITIVE_H_

#include <memory>
#include <string>
#include <vector>

#include "objalloc/core/dom_algorithm.h"
#include "objalloc/core/runner.h"
#include "objalloc/model/cost_model.h"
#include "objalloc/workload/generator.h"

namespace objalloc::analysis {

using core::DomAlgorithm;
using model::CostModel;
using model::ProcessorSet;
using model::Schedule;

struct RatioOptions {
  int num_processors = 8;
  int t = 2;  // availability threshold; initial scheme is {0..t-1}
  size_t schedule_length = 160;
  int seeds_per_generator = 4;
  uint64_t base_seed = 0x0b7a110c2026ULL;

  util::Status Validate() const;
};

// One measured schedule.
struct RatioSample {
  std::string generator;
  uint64_t seed = 0;
  double algorithm_cost = 0;
  double opt_cost = 0;
  double ratio = 0;
};

struct RatioSummary {
  std::string algorithm;
  CostModel cost_model;
  std::vector<RatioSample> samples;
  RatioSample worst;   // maximal ratio
  double mean_ratio = 0;
};

// Ratio of `algorithm` to the exact OPT on one schedule. OPT cost of zero
// (possible only in MC when every request is served locally for free) is
// treated as ratio 1 when the algorithm's cost is also zero, and +inf
// otherwise.
double RatioOnSchedule(DomAlgorithm& algorithm, const CostModel& cost_model,
                       const Schedule& schedule, ProcessorSet initial_scheme);

// Maximizes the ratio over `generators` x seeds. The initial scheme is
// {0..t-1} as the adversaries assume.
RatioSummary MeasureCompetitiveRatio(
    DomAlgorithm& algorithm, const CostModel& cost_model,
    const std::vector<std::unique_ptr<workload::ScheduleGenerator>>&
        generators,
    const RatioOptions& options);

}  // namespace objalloc::analysis

#endif  // OBJALLOC_ANALYSIS_COMPETITIVE_H_
