#include "objalloc/analysis/steady_state.h"

#include <cmath>
#include <vector>

#include "objalloc/util/logging.h"
#include "objalloc/util/parallel.h"
#include "objalloc/util/processor_set.h"

namespace objalloc::analysis {

namespace {

// DA's scheme under the symmetric workload, by symmetry of the outsiders,
// is captured by (p's role, number of outsider replicas m):
//   A: p is the floating member            scheme = F ∪ {p} ∪ J,  |J| = m
//   B: p holds no copy                     scheme = F ∪ J,        |J| = m >= 1
//   C: p re-joined as a saving reader      scheme = F ∪ {p} ∪ J,  |J| = m >= 1
// (in B and C the floating member is one of the m outsiders).
struct DaChain {
  int out;           // outsiders: n - t
  int states;        // 3 * (out + 1), addressed by Index()
  double rho;        // read fraction
  int n, t;
  double cio, cc, cd;

  int Index(int kind, int m) const { return kind * (out + 1) + m; }

  double read_local() const { return cio; }
  double read_remote_save() const { return cc + 2 * cio + cd; }
  double write_base() const { return (t - 1) * cd + t * cio; }
};

// Accumulates transitions: probability `prob` of moving to state `next`
// with request cost `cost`.
struct Transition {
  int next;
  double prob;
  double cost;
};

void StateTransitions(const DaChain& chain, int kind, int m,
                      std::vector<Transition>& out_transitions) {
  out_transitions.clear();
  const double rho = chain.rho;
  const double n = chain.n;
  const int out = chain.out;
  const int t = chain.t;
  const double write_base = chain.write_base();
  auto add = [&](int next, double prob, double cost) {
    if (prob > 0) out_transitions.push_back({next, prob, cost});
  };

  if (kind == 0) {  // A: p floating, members = t + m
    add(chain.Index(0, m), rho * (t + m) / n, chain.read_local());
    if (m < out) {
      add(chain.Index(0, m + 1), rho * (out - m) / n,
          chain.read_remote_save());
    }
    // Write by the core (F or p): scheme resets to F ∪ {p}.
    add(chain.Index(0, 0), (1 - rho) * t / n, m * chain.cc + write_base);
    // Write by an outsider q: p plus the joiners other than q invalidate.
    if (out > 0) {
      double expected_inval = 1 + m - static_cast<double>(m) / out;
      add(chain.Index(1, 1), (1 - rho) * out / n,
          expected_inval * chain.cc + write_base);
    }
    return;
  }

  if (kind == 1) {  // B: p evicted, members = t - 1 + m, m >= 1
    add(chain.Index(1, m), rho * (t - 1 + m) / n, chain.read_local());
    // p reads and re-joins.
    add(chain.Index(2, m), rho * 1 / n, chain.read_remote_save());
    if (m < out) {
      add(chain.Index(1, m + 1), rho * (out - m) / n,
          chain.read_remote_save());
    }
    // Write by F or by p: X = F ∪ {p}, the m outsiders invalidate.
    add(chain.Index(0, 0), (1 - rho) * t / n, m * chain.cc + write_base);
    // Write by an outsider q (member with probability m/out).
    double expected_inval = m - static_cast<double>(m) / out;
    add(chain.Index(1, 1), (1 - rho) * out / n,
        expected_inval * chain.cc + write_base);
    return;
  }

  // C: p re-joined as a reader, members = t + m, m >= 1.
  add(chain.Index(2, m), rho * (t + m) / n, chain.read_local());
  if (m < out) {
    add(chain.Index(2, m + 1), rho * (out - m) / n,
        chain.read_remote_save());
  }
  add(chain.Index(0, 0), (1 - rho) * t / n, m * chain.cc + write_base);
  double expected_inval = 1 + m - static_cast<double>(m) / out;
  add(chain.Index(1, 1), (1 - rho) * out / n,
      expected_inval * chain.cc + write_base);
}

}  // namespace

util::Status SymmetricWorkload::Validate(int t) const {
  if (num_processors < 2 || num_processors > util::kMaxProcessors) {
    return util::Status::InvalidArgument("num_processors out of range");
  }
  if (read_fraction < 0 || read_fraction > 1) {
    return util::Status::InvalidArgument("read_fraction outside [0, 1]");
  }
  if (t < 2 || t >= num_processors) {
    return util::Status::InvalidArgument("need 2 <= t < num_processors");
  }
  return util::Status::Ok();
}

double SaExpectedCostPerRequest(const model::CostModel& cost_model,
                                const SymmetricWorkload& workload, int t) {
  OBJALLOC_CHECK(workload.Validate(t).ok());
  OBJALLOC_CHECK(cost_model.Validate().ok());
  const double n = workload.num_processors;
  const double rho = workload.read_fraction;
  const double cio = cost_model.io, cc = cost_model.control,
               cd = cost_model.data;
  const double member = t / n;
  double read_cost = member * cio + (1 - member) * (cc + cio + cd);
  // Write by a member: (t-1) transfers + t outputs; by a non-member: t of
  // each. No invalidations (the scheme never changes).
  double write_cost = member * ((t - 1) * cd + t * cio) +
                      (1 - member) * (t * (cd + cio));
  return rho * read_cost + (1 - rho) * write_cost;
}

double DaExpectedCostPerRequest(const model::CostModel& cost_model,
                                const SymmetricWorkload& workload, int t) {
  OBJALLOC_CHECK(workload.Validate(t).ok());
  OBJALLOC_CHECK(cost_model.Validate().ok());
  DaChain chain;
  chain.n = workload.num_processors;
  chain.t = t;
  chain.out = chain.n - t;
  chain.states = 3 * (chain.out + 1);
  chain.rho = workload.read_fraction;
  chain.cio = cost_model.io;
  chain.cc = cost_model.control;
  chain.cd = cost_model.data;

  // Stationary distribution by power iteration from the initial state A_0.
  std::vector<double> pi(static_cast<size_t>(chain.states), 0.0);
  pi[static_cast<size_t>(chain.Index(0, 0))] = 1.0;
  std::vector<double> next(pi.size());
  std::vector<Transition> transitions;
  for (int iter = 0; iter < 20000; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    for (int kind = 0; kind < 3; ++kind) {
      for (int m = (kind == 0 ? 0 : 1); m <= chain.out; ++m) {
        double mass = pi[static_cast<size_t>(chain.Index(kind, m))];
        if (mass == 0) continue;
        StateTransitions(chain, kind, m, transitions);
        for (const Transition& tr : transitions) {
          next[static_cast<size_t>(tr.next)] += mass * tr.prob;
        }
      }
    }
    double delta = 0;
    for (size_t s = 0; s < pi.size(); ++s) {
      delta += std::fabs(next[s] - pi[s]);
    }
    pi.swap(next);
    if (delta < 1e-13) break;
  }

  double expected = 0;
  for (int kind = 0; kind < 3; ++kind) {
    for (int m = (kind == 0 ? 0 : 1); m <= chain.out; ++m) {
      double mass = pi[static_cast<size_t>(chain.Index(kind, m))];
      if (mass == 0) continue;
      StateTransitions(chain, kind, m, transitions);
      for (const Transition& tr : transitions) {
        expected += mass * tr.prob * tr.cost;
      }
    }
  }
  return expected;
}

ReadFractionInterval SaFavorableReadFractions(
    const model::CostModel& cost_model, int num_processors, int t) {
  auto gap = [&](double rho) {
    SymmetricWorkload workload{num_processors, rho};
    return DaExpectedCostPerRequest(cost_model, workload, t) -
           SaExpectedCostPerRequest(cost_model, workload, t);
  };
  // Scan for the SA-favorable band (gap > 0), then refine its edges by
  // bisection. The band is an interval in practice (gap rises through the
  // join-churn middle and falls toward the read-heavy end). Grid points are
  // independent Markov-chain solves, so the scan fans across the pool.
  constexpr int kGrid = 64;
  std::vector<char> positive(kGrid + 1, 0);
  util::ParallelFor(0, kGrid + 1, 4, [&](size_t lo, size_t hi) {
    for (size_t k = lo; k < hi; ++k) {
      positive[k] = gap(static_cast<double>(k) / kGrid) > 0 ? 1 : 0;
    }
  });
  int first = -1, last = -1;
  for (int k = 0; k <= kGrid; ++k) {
    if (positive[static_cast<size_t>(k)]) {
      if (first < 0) first = k;
      last = k;
    }
  }
  ReadFractionInterval interval;
  if (first < 0) return interval;  // DA dominates everywhere
  interval.empty = false;

  auto bisect = [&](double lo, double hi, bool rising) {
    // Finds the sign change in (lo, hi); `rising` means gap(lo) <= 0 < gap(hi).
    for (int iter = 0; iter < 50; ++iter) {
      double mid = (lo + hi) / 2;
      bool positive = gap(mid) > 0;
      if (positive == rising) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    return (lo + hi) / 2;
  };
  interval.lo = first == 0
                    ? 0.0
                    : bisect((first - 1.0) / kGrid,
                             static_cast<double>(first) / kGrid, true);
  interval.hi = last == kGrid
                    ? 1.0
                    : bisect(static_cast<double>(last) / kGrid,
                             (last + 1.0) / kGrid, false);
  return interval;
}

}  // namespace objalloc::analysis
