// net::Server — the TCP serving front-end (DESIGN.md §15): an epoll event
// loop that coalesces requests from many connections into the engine's
// zero-alloc SubmitBatch/WaitBatch path, wrapped in a robustness envelope
// built for overload, slow clients, and malformed input.
//
// Threading: ONE event-loop thread (the caller of Run) owns every
// connection, every buffer, and the ObjectService — which keeps the
// service's single-caller contract intact; the engine's own shard workers
// are the parallelism. RequestDrain and Stats are the only cross-thread
// entry points (atomics + eventfd, and a counter mutex, respectively).
//
// Batching: parsed event-bearing requests queue in arrival order (FIFO
// across connections — per-connection pipelining composes into
// cross-connection batches). A batch is cut when it holds
// `batch_max_events` events or the oldest queued request has waited
// `batch_max_delay_us`, and handed to SubmitBatch; while the shards serve
// it the loop keeps reading sockets and admits the next batch
// (double-buffered, like ObjectService::ServeStream). Results return to
// each connection as replies keyed by request id — replies may be
// reordered relative to submission (shed/timeout replies overtake queued
// work), which is why ids exist.
//
// The overload state machine (accept → shed → drain):
//
//   accept   Budgets hold: requests are validated, queued, batched,
//            served. Caller errors (unknown object, bad processor,
//            malformed payload) are rejected individually with their
//            library status — the engine batch itself can then never
//            reject, so one bad client cannot poison a coalesced batch.
//   shed     A budget is exceeded — per-connection in-flight, global
//            in-flight, shard-executor queue depth, WAL backlog bytes, or
//            (optionally) degraded durability. The request is refused
//            IMMEDIATELY with kOverloaded (kUnavailable for the degraded
//            case), never silently dropped and never queued: the queue
//            stays bounded, so admitted-request latency stays bounded —
//            overload degrades goodput, not tail latency. Requests whose
//            deadline elapses while queued are replied kTimeout and never
//            reach the engine.
//   drain    RequestDrain (SIGTERM via net::DrainSignal, or a test):
//            stop accepting connections and reading sockets, serve
//            everything already queued, flush replies, WaitDurable
//            (SyncDurable when durability is attached), close, and Run
//            returns Ok — the process exits 0.
//
// Connection chaos handling: a frame that breaks the protocol (bad
// version, unknown type, oversized or undersized length, CRC mismatch)
// draws a best-effort kProtocolError reply and the connection is dropped —
// parse-and-reject, no resynchronization guessing. Slow clients are
// bounded by `max_write_buffer_bytes` of queued replies and evicted at the
// cap; idle connections are closed after `idle_timeout_ms`. Disconnects at
// any byte boundary are absorbed: requests already admitted still serve
// (their replies are discarded when the connection is gone).

#ifndef OBJALLOC_NET_SERVER_H_
#define OBJALLOC_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "objalloc/core/object_service.h"
#include "objalloc/net/wire.h"
#include "objalloc/util/status.h"

namespace objalloc::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = ephemeral; read the bound port via port()
  int listen_backlog = 128;

  // Connection-level bounds.
  size_t max_connections = 256;
  size_t max_frame_bytes = kDefaultMaxFrameBytes;
  size_t max_batch_items = 4096;          // items in one wire batch op
  size_t max_write_buffer_bytes = 4u << 20;  // slow-client eviction cap
  uint32_t idle_timeout_ms = 0;           // 0 = never
  // SO_SNDBUF for accepted sockets; 0 keeps the kernel default. A small
  // value makes a non-reading peer back up into the userspace write
  // buffer (and hit the eviction cap) quickly instead of hiding behind
  // megabytes of kernel buffering.
  int socket_send_buffer_bytes = 0;

  // Cross-connection batching window.
  size_t batch_max_events = 4096;
  uint32_t batch_max_delay_us = 200;

  // Admission budgets (events, not frames).
  size_t max_inflight_global = 16384;
  size_t max_inflight_per_connection = 4096;

  // Engine backpressure: shed while the shard-executor rings or the WAL
  // writer are this far behind.
  uint64_t shed_executor_queue_ops = 1u << 16;
  size_t shed_wal_backlog_bytes = 64u << 20;
  // Degraded durability (DurabilityState::kDegraded) sheds *writes* with
  // kUnavailable when set; reads always keep serving.
  bool shed_writes_when_degraded = false;

  // Applied to requests that carry deadline_ms == 0; 0 = no deadline.
  uint32_t default_deadline_ms = 0;

  // Drain on SIGTERM via net::DrainSignal (examples turn this on; tests
  // drive RequestDrain directly).
  bool drain_on_sigterm = false;

  util::Status Validate() const;
};

// Front-end counters (events unless noted). Reads are snapshots guarded by
// a mutex; the loop thread is the only writer.
struct ServerStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_refused = 0;  // over max_connections
  uint64_t connections_evicted = 0;  // write buffer over the cap
  uint64_t connections_idle_closed = 0;
  uint64_t protocol_errors = 0;      // frames that broke framing (per conn)
  uint64_t admitted_events = 0;      // reached the engine
  uint64_t shed_overloaded = 0;      // kOverloaded / kUnavailable replies
  uint64_t shed_timeout = 0;         // kTimeout replies
  uint64_t rejected_events = 0;      // caller errors
  uint64_t batches_submitted = 0;    // engine batches
  uint64_t registrations = 0;
};

class Server {
 public:
  // `service` must outlive the server; the server becomes its single
  // caller for the duration of Run.
  Server(core::ObjectService* service, const ServerOptions& options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  // Binds and listens (and installs the SIGTERM drain handler when
  // configured). After Ok, port() returns the bound port.
  util::Status Start();

  uint16_t port() const { return port_; }

  // Runs the event loop until a drain completes. Returns Ok after a clean
  // drain; an error only for loop-level failures (epoll breakage), never
  // for per-connection chaos.
  util::Status Run();

  // Thread- and signal-safe: flips the drain latch and wakes the loop.
  void RequestDrain();

  ServerStats Stats() const;

 private:
  using Clock = std::chrono::steady_clock;
  using TimePoint = Clock::time_point;

  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string in;   // unparsed request bytes
    std::string out;  // unflushed reply bytes
    size_t inflight_events = 0;
    TimePoint last_activity;
    bool close_after_flush = false;  // protocol error: flush reply, drop
    bool want_write = false;         // EPOLLOUT currently registered
  };

  // One queued wire request: `events` many engine events, stored
  // contiguously in pending_events_ in the same order. A batch op is one
  // Pending with events > 1 — it enters an engine batch whole (all-or-
  // nothing, like the library batch path).
  struct Pending {
    uint64_t connection = 0;
    uint64_t request_id = 0;
    MsgType type = MsgType::kRead;
    uint32_t events = 0;
    TimePoint deadline;  // TimePoint::max() = none
    // Deadline elapsed while queued: already replied kTimeout; the batch
    // builder discards its events instead of serving them.
    bool expired = false;
  };

  // A reply owed by an in-flight engine batch: request `request_id` on
  // `connection` covers result events [first, first + events).
  struct ReplyRef {
    uint64_t connection = 0;
    uint64_t request_id = 0;
    MsgType type = MsgType::kRead;
    uint32_t first = 0;
    uint32_t events = 0;
  };

  // Double-buffered engine submission slot.
  struct BatchSlot {
    std::vector<workload::MultiObjectEvent> events;
    std::vector<ReplyRef> replies;
    core::BatchResult result;
    core::BatchTicket ticket;
    bool submitted = false;
  };

  util::Status RunLoop();
  void AcceptReady();
  void HandleReadable(Connection* conn);
  void HandleWritable(Connection* conn);
  void ParseFrames(Connection* conn);
  void HandleRequest(Connection* conn, const Frame& frame);
  void HandleRegister(Connection* conn, const Frame& frame);
  void HandleStats(Connection* conn, const Frame& frame);
  // Admission for event-bearing requests: budgets, backpressure,
  // validation, deadline stamping, enqueue. Replies on rejection.
  void AdmitServe(Connection* conn, const Frame& frame);
  void AdmitBatchOp(Connection* conn, const Frame& frame);
  // Shed/reject/reply helpers.
  void ReplyStatus(Connection* conn, MsgType request_type, uint64_t request_id,
                   const util::Status& status);
  void ReplyOk(Connection* conn, MsgType request_type, uint64_t request_id,
               std::string_view payload);
  void SendProtocolError(Connection* conn, uint64_t request_id,
                         const std::string& reason);
  // Returns Ok when `events` more events fit every budget, else the
  // taxonomy-correct rejection (kOverloaded / kUnavailable).
  util::Status CheckAdmission(const Connection& conn, size_t events,
                              bool has_write);
  // Expires queued requests whose deadline passed (kTimeout replies).
  void SweepDeadlines(TimePoint now);
  // Cuts and submits an engine batch from the pending queue when the
  // window or drain policy says so; finalizes completed slots.
  void MaybeSubmit(TimePoint now, bool force);
  void SubmitPending(TimePoint now);
  void FinalizeSlot(BatchSlot* slot);
  void FinalizeAllSlots();
  void FlushConnection(Connection* conn);
  void UpdateWriteInterest(Connection* conn);
  void CloseConnection(uint64_t id);
  void SweepIdle(TimePoint now);
  void DrainAndExit();
  int EpollTimeoutMs(TimePoint now) const;
  uint32_t SchemeCrc() const;

  core::ObjectService* service_;
  ServerOptions options_;
  int epoll_fd_ = -1;
  int listen_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: RequestDrain wakes the loop
  uint16_t port_ = 0;
  bool started_ = false;

  std::atomic<bool> drain_requested_{false};
  bool draining_ = false;

  uint64_t next_connection_id_ = 1;
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;

  // Arrival-ordered request queue; events in pending_events_ parallel the
  // Pending records (request k's events are the next Pending::events after
  // request k-1's). Both bounded by max_inflight_global.
  std::deque<Pending> pending_;
  std::deque<workload::MultiObjectEvent> pending_events_;
  size_t global_inflight_ = 0;     // queued + submitted, events
  TimePoint oldest_pending_;       // arrival of pending_.front()
  TimePoint min_deadline_ = TimePoint::max();

  BatchSlot slots_[2];
  int next_slot_ = 0;

  std::string encode_scratch_;  // reply payload build buffer

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  core::ServiceLoad last_load_;  // sampled once per loop iteration
};

}  // namespace objalloc::net

#endif  // OBJALLOC_NET_SERVER_H_
