// DrainSignal — one process-wide "please drain and exit" latch shared by
// every binary that shuts down gracefully (DESIGN.md §15).
//
// A SIGTERM handler may only do async-signal-safe work, so the latch is an
// atomic flag plus an eventfd: the handler stores the flag and writes the
// eventfd, nothing else. Event-loop consumers (net::Server) register fd()
// in their poll set and wake immediately; batch-loop consumers
// (examples/crash_recover) poll Requested() between batches. Both then run
// their own drain: stop taking new work, flush what is in flight, sync
// durability, exit 0.
//
// Install is idempotent and the latch is intentionally never reset in
// production — a drained process exits. ResetForTest exists so tests can
// reuse the process.

#ifndef OBJALLOC_NET_SIGNAL_DRAIN_H_
#define OBJALLOC_NET_SIGNAL_DRAIN_H_

#include <csignal>

namespace objalloc::net {

class DrainSignal {
 public:
  // Installs the drain handler for `signum` (default SIGTERM) and creates
  // the eventfd. Safe to call more than once; later signums add handlers
  // to the same latch. Aborts on eventfd/sigaction failure (startup-time
  // resource exhaustion, not a servable error).
  static void Install(int signum = SIGTERM);

  // True once a drain was requested (signal delivered or Request called).
  static bool Requested();

  // Marks the latch and wakes fd(). Async-signal-safe; also callable from
  // normal code (tests, RequestDrain plumbing).
  static void Request();

  // Readable eventfd that becomes ready when the latch trips, or -1 before
  // Install. Level semantics for poll users: the counter is left unread, so
  // epoll (level-triggered) keeps reporting it readable while draining.
  static int fd();

  static void ResetForTest();
};

}  // namespace objalloc::net

#endif  // OBJALLOC_NET_SIGNAL_DRAIN_H_
