// net::chaos — seeded, deterministic connection-chaos profiles (DESIGN.md
// §15): misbehaving clients distilled from the failure modes a public TCP
// front-end actually meets. Each profile is a pure function of its seed,
// so a failing run replays exactly; the server must survive every profile
// with zero crashes, zero hangs, and no effect on well-formed traffic.
//
//   kMidFrameDisconnect  valid frame prefixes cut at a random byte, then RST
//   kByteDribble         valid frames dribbled a byte at a time (slow client)
//   kCorruptFrame        valid frames with one random bit flipped
//   kTruncatedFrame      frames whose length field promises more than sent
//   kOversizedFrame      length fields far beyond the server's max
//   kWrongVersion        well-framed messages with an alien version byte
//   kRandomGarbage       uniformly random bytes
//   kConnectFlood        rapid connect/disconnect cycles, nothing sent
//
// RunChaos connects, misbehaves, and records what the server did about it.
// It never asserts — callers (tests, CI) judge the ChaosReport.

#ifndef OBJALLOC_NET_CHAOS_H_
#define OBJALLOC_NET_CHAOS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace objalloc::net {

enum class ChaosProfile {
  kMidFrameDisconnect,
  kByteDribble,
  kCorruptFrame,
  kTruncatedFrame,
  kOversizedFrame,
  kWrongVersion,
  kRandomGarbage,
  kConnectFlood,
};

const char* ChaosProfileName(ChaosProfile profile);

// Every profile, for sweep loops.
std::vector<ChaosProfile> AllChaosProfiles();

struct ChaosOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  uint64_t seed = 1;
  // Connections attempted (each one misbehaves once).
  int iterations = 32;
  // Object ids the valid-looking frames reference (must be registered for
  // traffic-bearing profiles to exercise the serve path).
  int64_t first_object = 0;
  int64_t object_count = 1;
  int num_processors = 2;
  // How long each connection listens for the server's reaction. Profiles
  // the server ignores by design (e.g. truncated frames it keeps waiting
  // on) pay the full timeout every iteration — keep it modest in tests.
  int receive_timeout_ms = 150;
};

struct ChaosReport {
  ChaosProfile profile = ChaosProfile::kRandomGarbage;
  int connections_attempted = 0;
  int connections_established = 0;
  int frames_sent = 0;           // complete or partial injections
  int error_replies_seen = 0;    // kProtocolError or error-status replies
  int ok_replies_seen = 0;       // dribbled-but-valid frames that served
  int peer_closes_seen = 0;      // server dropped us (expected for most)
  // The liveness verdict: a clean ping on a fresh connection after the
  // storm. False means the front-end was taken down by the profile.
  bool server_alive_after = false;
};

ChaosReport RunChaos(ChaosProfile profile, const ChaosOptions& options);

}  // namespace objalloc::net

#endif  // OBJALLOC_NET_CHAOS_H_
