#include "objalloc/net/chaos.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string_view>

#include "objalloc/net/client.h"
#include "objalloc/net/wire.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/rng.h"

namespace objalloc::net {

namespace {

// A raw socket wrapper that intentionally bypasses net::Client — chaos
// needs byte-level control that a correct client never exposes.
class RawConn {
 public:
  ~RawConn() { CloseHard(); }

  bool Connect(const std::string& host, uint16_t port) {
    fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      CloseHard();
      return false;
    }
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool SendAll(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n =
          send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
      if (n > 0) {
        sent += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      return false;  // server already dropped us — that IS the test passing
    }
    return true;
  }

  // Reads whatever the server says within `timeout_ms`; returns bytes
  // received (0 on timeout), -1 when the peer closed.
  int Receive(std::string* out, int timeout_ms) {
    pollfd pfd = {};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    if (poll(&pfd, 1, timeout_ms) <= 0) return 0;
    char buffer[16 * 1024];
    const ssize_t n = read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      out->append(buffer, static_cast<size_t>(n));
      return static_cast<int>(n);
    }
    return -1;
  }

  // Abortive close (RST instead of FIN): SO_LINGER zero. The harshest
  // disconnect a peer can deliver mid-frame.
  void CloseRst() {
    if (fd_ < 0) return;
    struct linger lg = {1, 0};
    setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    CloseHard();
  }

  void CloseHard() {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
};

// One syntactically valid serve frame against a registered object.
std::string ValidFrame(util::Rng& rng, const ChaosOptions& options,
                       uint64_t request_id) {
  ServeRequest request;
  request.object =
      options.first_object +
      static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(std::max<int64_t>(options.object_count, 1))));
  request.processor = static_cast<uint32_t>(
      rng.NextBounded(static_cast<uint64_t>(std::max(options.num_processors, 1))));
  request.deadline_ms = 0;
  std::string payload;
  EncodeServe(request, &payload);
  std::string frame;
  AppendFrame(rng.NextDouble() < 0.5 ? MsgType::kRead : MsgType::kWrite, 0,
              request_id, payload, &frame);
  return frame;
}

// Counts frames in a reply byte stream, classifying ok vs error.
void CountReplies(std::string_view bytes, ChaosReport* report) {
  size_t offset = 0;
  while (offset < bytes.size()) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeResult result =
        DecodeFrame(bytes.substr(offset), kDefaultMaxFrameBytes, &frame,
                    &consumed, &error);
    if (result != DecodeResult::kFrame) return;
    offset += consumed;
    if (frame.type == MsgType::kProtocolError || frame.status != 0) {
      ++report->error_replies_seen;
    } else {
      ++report->ok_replies_seen;
    }
  }
}

}  // namespace

const char* ChaosProfileName(ChaosProfile profile) {
  switch (profile) {
    case ChaosProfile::kMidFrameDisconnect:
      return "mid_frame_disconnect";
    case ChaosProfile::kByteDribble:
      return "byte_dribble";
    case ChaosProfile::kCorruptFrame:
      return "corrupt_frame";
    case ChaosProfile::kTruncatedFrame:
      return "truncated_frame";
    case ChaosProfile::kOversizedFrame:
      return "oversized_frame";
    case ChaosProfile::kWrongVersion:
      return "wrong_version";
    case ChaosProfile::kRandomGarbage:
      return "random_garbage";
    case ChaosProfile::kConnectFlood:
      return "connect_flood";
  }
  return "unknown";
}

std::vector<ChaosProfile> AllChaosProfiles() {
  return {ChaosProfile::kMidFrameDisconnect, ChaosProfile::kByteDribble,
          ChaosProfile::kCorruptFrame,       ChaosProfile::kTruncatedFrame,
          ChaosProfile::kOversizedFrame,     ChaosProfile::kWrongVersion,
          ChaosProfile::kRandomGarbage,      ChaosProfile::kConnectFlood};
}

ChaosReport RunChaos(ChaosProfile profile, const ChaosOptions& options) {
  ChaosReport report;
  report.profile = profile;
  util::Rng rng(options.seed);

  for (int i = 0; i < options.iterations; ++i) {
    ++report.connections_attempted;
    RawConn conn;
    if (!conn.Connect(options.host, options.port)) continue;
    ++report.connections_established;
    std::string received;

    switch (profile) {
      case ChaosProfile::kConnectFlood:
        // Connect and leave (alternating FIN/RST) — the accept path and
        // the idle sweep absorb the churn.
        if (rng.NextDouble() < 0.5) {
          conn.CloseRst();
        } else {
          conn.CloseHard();
        }
        continue;

      case ChaosProfile::kMidFrameDisconnect: {
        std::string frame = ValidFrame(rng, options, 1 + i);
        // Cut strictly inside the frame: [1, size - 1) bytes go out.
        const size_t cut =
            1 + rng.NextBounded(static_cast<uint64_t>(frame.size() - 1));
        conn.SendAll(std::string_view(frame).substr(0, cut));
        ++report.frames_sent;
        conn.CloseRst();
        continue;
      }

      case ChaosProfile::kByteDribble: {
        // A complete, valid exchange — just delivered one byte per write.
        // The server must buffer patiently and still serve it.
        std::string frame = ValidFrame(rng, options, 1 + i);
        bool alive = true;
        for (char byte : frame) {
          if (!conn.SendAll(std::string_view(&byte, 1))) {
            alive = false;
            break;
          }
        }
        ++report.frames_sent;
        if (alive) {
          while (conn.Receive(&received, options.receive_timeout_ms) > 0 &&
                 received.size() < kFrameOverheadBytes + sizeof(double)) {
          }
          CountReplies(received, &report);
        }
        conn.CloseHard();
        continue;
      }

      case ChaosProfile::kCorruptFrame: {
        std::string frame = ValidFrame(rng, options, 1 + i);
        // Flip one random bit anywhere past the length field: CRC must
        // catch it. (Length-field flips are covered by kTruncated /
        // kOversized below.)
        const size_t byte =
            4 + rng.NextBounded(static_cast<uint64_t>(frame.size() - 4));
        frame[byte] = static_cast<char>(
            static_cast<uint8_t>(frame[byte]) ^ (1u << rng.NextBounded(8)));
        conn.SendAll(frame);
        ++report.frames_sent;
        break;
      }

      case ChaosProfile::kTruncatedFrame: {
        std::string frame = ValidFrame(rng, options, 1 + i);
        // Lie upward in the length field, then send the original bytes and
        // FIN: the server waits for the promised remainder that never
        // comes, then the disconnect lands mid-"frame".
        uint32_t length = 0;
        std::memcpy(&length, frame.data(), sizeof(length));
        length += 1 + static_cast<uint32_t>(rng.NextBounded(64));
        std::memcpy(frame.data(), &length, sizeof(length));
        conn.SendAll(frame);
        ++report.frames_sent;
        break;
      }

      case ChaosProfile::kOversizedFrame: {
        std::string frame = ValidFrame(rng, options, 1 + i);
        const uint32_t length =
            static_cast<uint32_t>(kDefaultMaxFrameBytes) +
            1 + static_cast<uint32_t>(rng.NextBounded(1u << 20));
        std::memcpy(frame.data(), &length, sizeof(length));
        conn.SendAll(frame);
        ++report.frames_sent;
        break;
      }

      case ChaosProfile::kWrongVersion: {
        std::string frame = ValidFrame(rng, options, 1 + i);
        // Byte 8 is the version; re-seal the CRC so ONLY the version is
        // wrong (a CRC mismatch would mask the version check).
        uint8_t version = kWireVersion;
        while (version == kWireVersion) {
          version = static_cast<uint8_t>(rng.NextBounded(256));
        }
        frame[8] = static_cast<char>(version);
        const uint32_t crc = util::Crc32(frame.data() + 8, frame.size() - 8);
        std::memcpy(frame.data() + 4, &crc, sizeof(crc));
        conn.SendAll(frame);
        ++report.frames_sent;
        break;
      }

      case ChaosProfile::kRandomGarbage: {
        std::string garbage;
        const size_t len = 1 + rng.NextBounded(512);
        garbage.reserve(len);
        for (size_t b = 0; b < len; ++b) {
          garbage.push_back(static_cast<char>(rng.NextBounded(256)));
        }
        conn.SendAll(garbage);
        ++report.frames_sent;
        break;
      }
    }

    // Malformed-input profiles fall through to here: give the server a
    // moment to answer (kProtocolError) and/or hang up on us.
    const int got = conn.Receive(&received, options.receive_timeout_ms);
    CountReplies(received, &report);
    if (got < 0 || conn.Receive(&received, options.receive_timeout_ms) < 0) {
      ++report.peer_closes_seen;
    }
    conn.CloseHard();
  }

  // The verdict: is the front-end still serving fresh, well-behaved
  // connections after the storm?
  Client probe;
  if (probe.Connect(options.host, options.port).ok() && probe.Ping().ok()) {
    report.server_alive_after = true;
  }
  return report;
}

}  // namespace objalloc::net
