// net::Client — a blocking TCP client for the objalloc wire protocol
// (wire.h), with optional pipelining: Send* enqueues a request and returns
// its id without waiting, WaitReply blocks for the next reply (any id).
// The synchronous helpers (Ping, Register, Read, ...) are Send + wait for
// that specific id, so both styles mix freely on one connection.
//
// Single-threaded like the rest of the stack: one thread per Client. The
// class never throws on connection chaos — a peer that disappears or
// breaks framing turns into a Status (kUnavailable for a dead socket,
// kDataLoss for broken framing), and connected() goes false.

#ifndef OBJALLOC_NET_CLIENT_H_
#define OBJALLOC_NET_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "objalloc/net/wire.h"
#include "objalloc/util/status.h"

namespace objalloc::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  util::Status Connect(const std::string& host, uint16_t port);
  void Close();
  bool connected() const { return fd_ >= 0; }
  // The raw socket, for chaos tests that want to abuse it directly.
  int fd() const { return fd_; }

  // ---- Synchronous RPCs. The returned Status is the *reply's* status
  // (kOverloaded when shed, kTimeout when expired, ...), or a transport
  // error. Replies to other outstanding pipelined requests that arrive
  // while waiting are buffered and surface through WaitReply later.

  util::Status Ping();
  util::Status Register(int64_t object, uint64_t scheme_mask,
                        uint8_t algorithm);
  util::StatusOr<double> Read(int64_t object, uint32_t processor,
                              uint32_t deadline_ms = 0);
  util::StatusOr<double> Write(int64_t object, uint32_t processor,
                               uint32_t deadline_ms = 0);
  util::StatusOr<std::vector<double>> Batch(const BatchRequest& request);
  util::StatusOr<WireStats> QueryStats();

  // ---- Pipelined sends: frame goes out (or is queued on a full socket),
  // the reply arrives via WaitReply. Ids are per-connection and unique.

  util::StatusOr<uint64_t> SendServe(bool is_write, int64_t object,
                                     uint32_t processor,
                                     uint32_t deadline_ms = 0);
  util::StatusOr<uint64_t> SendBatch(const BatchRequest& request);

  struct Reply {
    uint64_t request_id = 0;
    MsgType type = MsgType::kPing;
    util::Status status = util::Status::Ok();  // the reply's status field
    double cost = 0;                           // read/write replies
    std::vector<double> costs;                 // batch replies
    WireStats stats;                           // stats replies
  };

  // Blocks up to `timeout_ms` (-1 = forever) for one reply, buffered or
  // from the wire. kUnavailable: peer closed; kDeadlineExceeded-free: a
  // plain kTimeout Status means the *wait* timed out locally (no frame).
  util::StatusOr<Reply> WaitReply(int timeout_ms = -1);

  size_t outstanding() const { return outstanding_; }

 private:
  util::Status SendFrame(MsgType type, std::string_view payload,
                         uint64_t* id_out);
  util::Status ReadIntoBuffer(int timeout_ms);  // one poll+read
  // Decodes one frame from in_ if present; kUnavailable on framing error.
  util::StatusOr<Reply> TakeBufferedReply(bool* found);
  util::StatusOr<Reply> WaitReplyFor(uint64_t id);

  int fd_ = -1;
  uint64_t next_id_ = 1;
  size_t outstanding_ = 0;
  std::string in_;
  std::string scratch_;
  std::vector<Reply> buffered_;  // replies taken while waiting for an id
};

}  // namespace objalloc::net

#endif  // OBJALLOC_NET_CLIENT_H_
