#include "objalloc/net/signal_drain.h"

#include <sys/eventfd.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>

#include "objalloc/util/logging.h"

namespace objalloc::net {

namespace {

std::atomic<bool> g_requested{false};
std::atomic<int> g_fd{-1};

void Handler(int) { DrainSignal::Request(); }

}  // namespace

void DrainSignal::Install(int signum) {
  int fd = g_fd.load(std::memory_order_acquire);
  if (fd < 0) {
    fd = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    OBJALLOC_CHECK_GE(fd, 0) << "eventfd failed";
    int expected = -1;
    if (!g_fd.compare_exchange_strong(expected, fd,
                                      std::memory_order_acq_rel)) {
      close(fd);  // lost a racing Install; theirs wins
    }
  }
  struct sigaction action = {};
  action.sa_handler = Handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  OBJALLOC_CHECK_EQ(sigaction(signum, &action, nullptr), 0)
      << "sigaction failed for signal " << signum;
}

bool DrainSignal::Requested() {
  return g_requested.load(std::memory_order_acquire);
}

void DrainSignal::Request() {
  g_requested.store(true, std::memory_order_release);
  const int fd = g_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const uint64_t one = 1;
    // write() is async-signal-safe; a full eventfd counter (EAGAIN) still
    // leaves it readable, which is all the poller needs.
    [[maybe_unused]] ssize_t n = write(fd, &one, sizeof(one));
  }
}

int DrainSignal::fd() { return g_fd.load(std::memory_order_acquire); }

void DrainSignal::ResetForTest() {
  g_requested.store(false, std::memory_order_release);
  const int fd = g_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    uint64_t drain = 0;
    while (read(fd, &drain, sizeof(drain)) > 0) {
    }
  }
}

}  // namespace objalloc::net
