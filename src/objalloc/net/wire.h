// The objalloc wire protocol (DESIGN.md §15): length-prefixed, CRC-framed,
// versioned messages over a byte stream.
//
// Frame layout (all integers little-endian):
//
//   offset 0   u32  length      bytes that FOLLOW this field (header+payload)
//   offset 4   u32  crc         CRC32 over bytes [8, 4+length)
//   offset 8   u8   version     kWireVersion
//   offset 9   u8   type        MsgType
//   offset 10  u16  status      replies: the util::StatusCode; requests: 0
//   offset 12  u64  request_id  echoed verbatim in the reply
//   offset 20  ...  payload     length - 16 bytes, op-specific
//
// The CRC covers everything after itself — version, type, status,
// request id, payload — so any single-bit corruption in those bytes is
// detected structurally; corruption of the length field moves the frame
// boundary and is caught by the CRC landing on the wrong span (or by the
// bounds checks). Decoding is strict parse-and-reject: a frame with an
// unknown version, an unknown type, a length below the fixed header or
// above the negotiated maximum, or a CRC mismatch is a *protocol error* —
// the server replies kProtocolError and drops the connection; it never
// guesses at resynchronization (a byte stream that lied once cannot be
// trusted about where the next frame starts).
//
// Reply types are `request type | kReplyBit`. A reply's `status` carries
// the util::StatusCode taxonomy (util/status.h) verbatim, so wire replies
// and library errors agree: kOverloaded = shed by an admission budget,
// kTimeout = deadline elapsed while queued, kUnavailable = degraded
// serving — all transient (IsTransientRejection); kNotFound/kOutOfRange/
// kInvalidArgument = caller errors. Error replies carry the human-readable
// message as their payload.
//
// Payload schemas (request → ok-reply payload):
//   kPing      ()                                    → ()
//   kRegister  (i64 object, u64 scheme_mask, u8 alg) → ()
//   kRead      (i64 object, u32 processor, u32 deadline_ms) → (f64 cost)
//   kWrite     same as kRead                          → (f64 cost)
//   kBatch     (u32 count, u32 deadline_ms,
//               count × {i64 object, u32 processor, u8 is_write})
//                                                     → (u32 count, count × f64)
//   kStats     ()                                     → (WireStats, fixed-width)
//
// Batches are all-or-nothing, mirroring ObjectService::ServeBatch: one
// invalid item rejects the whole wire batch with no state change.

#ifndef OBJALLOC_NET_WIRE_H_
#define OBJALLOC_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "objalloc/util/status.h"

namespace objalloc::net {

inline constexpr uint8_t kWireVersion = 1;

// Fixed bytes per frame: the length field plus the CRC/version/type/status/
// request-id header it counts.
inline constexpr size_t kFrameHeaderBytes = 16;   // after the length field
inline constexpr size_t kFrameOverheadBytes = 4 + kFrameHeaderBytes;

// Default cap a decoder enforces on `length`. Oversized frames are
// protocol errors before any allocation happens — the length field of a
// hostile peer must never size a buffer.
inline constexpr size_t kDefaultMaxFrameBytes = 1u << 20;

inline constexpr uint8_t kReplyBit = 0x80;

enum class MsgType : uint8_t {
  kPing = 1,
  kRegister = 2,
  kRead = 3,
  kWrite = 4,
  kBatch = 5,
  kStats = 6,
  // Replies: request | kReplyBit.
  kPingReply = kPing | kReplyBit,
  kRegisterReply = kRegister | kReplyBit,
  kReadReply = kRead | kReplyBit,
  kWriteReply = kWrite | kReplyBit,
  kBatchReply = kBatch | kReplyBit,
  kStatsReply = kStats | kReplyBit,
  // Sent (best effort) before the server drops a connection that broke
  // framing; request_id echoes the last good id or 0.
  kProtocolError = 0xFF,
};

// True for the request types a client may send.
bool IsRequestType(uint8_t type);

// One decoded frame. `payload` views into the decode buffer — valid only
// while the buffer is.
struct Frame {
  uint8_t version = 0;
  MsgType type = MsgType::kPing;
  uint16_t status = 0;
  uint64_t request_id = 0;
  std::string_view payload;
};

enum class DecodeResult {
  kFrame,     // *frame and *consumed are set
  kNeedMore,  // buffer holds a frame prefix; read more bytes
  kError,     // framing broken (version/type/length/CRC) — drop the peer
};

// Strict frame decoder. Never reads past `buffer`, never allocates, and
// treats every malformed input as kError with a reason in *error.
DecodeResult DecodeFrame(std::string_view buffer, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed, std::string* error);

// Appends one framed message to *out (length, CRC, header, payload).
void AppendFrame(MsgType type, uint16_t status, uint64_t request_id,
                 std::string_view payload, std::string* out);

// ---------------------------------------------------------------------
// Typed payloads. Encode* appends the payload bytes only (frame them with
// AppendFrame); Parse* validates length and field ranges strictly.

struct RegisterRequest {
  int64_t object = 0;
  uint64_t scheme_mask = 0;
  uint8_t algorithm = 0;  // AlgorithmKind as u8; wire accepts kStatic/kDynamic
};

struct ServeRequest {
  int64_t object = 0;
  uint32_t processor = 0;
  uint32_t deadline_ms = 0;  // 0 = server default
};

struct BatchItem {
  int64_t object = 0;
  uint32_t processor = 0;
  uint8_t is_write = 0;
};

struct BatchRequest {
  uint32_t deadline_ms = 0;
  std::vector<BatchItem> items;
};

// Engine + front-end counters, the payload of kStatsReply. Fixed-width so
// the codec fuzz can bit-flip it like everything else.
struct WireStats {
  uint64_t objects = 0;
  int64_t total_requests = 0;
  int64_t control_messages = 0;
  int64_t data_messages = 0;
  int64_t io_ops = 0;
  uint32_t scheme_crc = 0;
  uint64_t admitted_events = 0;
  uint64_t shed_overloaded = 0;
  uint64_t shed_timeout = 0;
  uint64_t rejected_events = 0;
  uint64_t protocol_errors = 0;
  uint64_t connections_accepted = 0;
  uint64_t connections_evicted = 0;
  uint64_t connections_idle_closed = 0;
  uint64_t batches_submitted = 0;
  uint8_t durability_state = 0;  // core::DurabilityState
};

void EncodeRegister(const RegisterRequest& request, std::string* out);
util::Status ParseRegister(std::string_view payload, RegisterRequest* out);

void EncodeServe(const ServeRequest& request, std::string* out);
util::Status ParseServe(std::string_view payload, ServeRequest* out);

void EncodeBatch(const BatchRequest& request, std::string* out);
// `max_items` bounds the declared count before anything is reserved.
util::Status ParseBatch(std::string_view payload, size_t max_items,
                        BatchRequest* out);

void EncodeCost(double cost, std::string* out);
util::Status ParseCost(std::string_view payload, double* out);

void EncodeCosts(const std::vector<double>& costs, std::string* out);
util::Status ParseCosts(std::string_view payload, size_t max_items,
                        std::vector<double>* out);

void EncodeStats(const WireStats& stats, std::string* out);
util::Status ParseStats(std::string_view payload, WireStats* out);

// Wire status <-> util::StatusCode. The wire carries the enum value
// verbatim; unknown values parse as kInternal (a peer speaking a newer
// taxonomy is reported, not trusted).
uint16_t WireStatus(util::StatusCode code);
util::StatusCode CodeFromWireStatus(uint16_t status);

// Builds the Status a reply frame describes: Ok for status 0, otherwise
// the code plus the reply payload as message.
util::Status StatusFromReply(const Frame& frame);

}  // namespace objalloc::net

#endif  // OBJALLOC_NET_WIRE_H_
