#include "objalloc/net/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace objalloc::net {

namespace {

util::Status Errno(const char* what) {
  return util::Status::Unavailable(std::string(what) + ": " +
                                   std::strerror(errno));
}

}  // namespace

Client::~Client() { Close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      outstanding_(other.outstanding_),
      in_(std::move(other.in_)),
      buffered_(std::move(other.buffered_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    outstanding_ = other.outstanding_;
    in_ = std::move(other.in_);
    buffered_ = std::move(other.buffered_);
  }
  return *this;
}

util::Status Client::Connect(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) return Errno("socket");
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return util::Status::InvalidArgument("bad host address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    util::Status status = Errno("connect");
    Close();
    return status;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  next_id_ = 1;
  outstanding_ = 0;
  in_.clear();
  buffered_.clear();
  return util::Status::Ok();
}

void Client::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

util::Status Client::SendFrame(MsgType type, std::string_view payload,
                               uint64_t* id_out) {
  if (fd_ < 0) return util::Status::Unavailable("not connected");
  const uint64_t id = next_id_++;
  scratch_.clear();
  AppendFrame(type, 0, id, payload, &scratch_);
  size_t sent = 0;
  while (sent < scratch_.size()) {
    // MSG_NOSIGNAL: a server that evicted us turns into a Status, not a
    // process-killing SIGPIPE.
    const ssize_t n = send(fd_, scratch_.data() + sent,
                           scratch_.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    util::Status status = Errno("write");
    Close();
    return status;
  }
  ++outstanding_;
  if (id_out != nullptr) *id_out = id;
  return util::Status::Ok();
}

util::Status Client::ReadIntoBuffer(int timeout_ms) {
  if (fd_ < 0) return util::Status::Unavailable("not connected");
  pollfd pfd = {};
  pfd.fd = fd_;
  pfd.events = POLLIN;
  const int ready = poll(&pfd, 1, timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) return util::Status::Ok();  // caller re-loops
    return Errno("poll");
  }
  if (ready == 0) return util::Status::Timeout("no reply within timeout");
  char buffer[64 * 1024];
  const ssize_t n = read(fd_, buffer, sizeof(buffer));
  if (n > 0) {
    in_.append(buffer, static_cast<size_t>(n));
    return util::Status::Ok();
  }
  if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
    return util::Status::Ok();
  }
  Close();
  return util::Status::Unavailable("peer closed the connection");
}

util::StatusOr<Client::Reply> Client::TakeBufferedReply(bool* found) {
  *found = false;
  Frame frame;
  size_t consumed = 0;
  std::string error;
  const DecodeResult result = DecodeFrame(in_, kDefaultMaxFrameBytes, &frame,
                                          &consumed, &error);
  if (result == DecodeResult::kNeedMore) return Reply{};
  if (result == DecodeResult::kError) {
    Close();
    return util::Status::Internal("reply framing broken: " + error);
  }
  Reply reply;
  reply.request_id = frame.request_id;
  reply.type = frame.type;
  reply.status = StatusFromReply(frame);
  if (reply.status.ok()) {
    if (frame.type == MsgType::kReadReply || frame.type == MsgType::kWriteReply) {
      util::Status parsed = ParseCost(frame.payload, &reply.cost);
      if (!parsed.ok()) {
        Close();
        return parsed;
      }
    } else if (frame.type == MsgType::kBatchReply) {
      util::Status parsed =
          ParseCosts(frame.payload, 1u << 20, &reply.costs);
      if (!parsed.ok()) {
        Close();
        return parsed;
      }
    } else if (frame.type == MsgType::kStatsReply) {
      util::Status parsed = ParseStats(frame.payload, &reply.stats);
      if (!parsed.ok()) {
        Close();
        return parsed;
      }
    }
  }
  in_.erase(0, consumed);
  if (outstanding_ > 0) --outstanding_;
  *found = true;
  return reply;
}

util::StatusOr<Client::Reply> Client::WaitReply(int timeout_ms) {
  if (!buffered_.empty()) {
    Reply reply = std::move(buffered_.front());
    buffered_.erase(buffered_.begin());
    return reply;
  }
  while (true) {
    bool found = false;
    util::StatusOr<Reply> reply = TakeBufferedReply(&found);
    if (!reply.ok()) return reply;
    if (found) return reply;
    util::Status io = ReadIntoBuffer(timeout_ms);
    if (!io.ok()) return io;
  }
}

util::StatusOr<Client::Reply> Client::WaitReplyFor(uint64_t id) {
  while (true) {
    util::StatusOr<Reply> reply = WaitReply(-1);
    if (!reply.ok()) return reply;
    if (reply->request_id == id) return reply;
    buffered_.push_back(std::move(*reply));
  }
}

util::Status Client::Ping() {
  uint64_t id = 0;
  util::Status sent = SendFrame(MsgType::kPing, {}, &id);
  if (!sent.ok()) return sent;
  util::StatusOr<Reply> reply = WaitReplyFor(id);
  if (!reply.ok()) return reply.status();
  return reply->status;
}

util::Status Client::Register(int64_t object, uint64_t scheme_mask,
                              uint8_t algorithm) {
  RegisterRequest request;
  request.object = object;
  request.scheme_mask = scheme_mask;
  request.algorithm = algorithm;
  scratch_.clear();
  std::string payload;
  EncodeRegister(request, &payload);
  uint64_t id = 0;
  util::Status sent = SendFrame(MsgType::kRegister, payload, &id);
  if (!sent.ok()) return sent;
  util::StatusOr<Reply> reply = WaitReplyFor(id);
  if (!reply.ok()) return reply.status();
  return reply->status;
}

util::StatusOr<double> Client::Read(int64_t object, uint32_t processor,
                                    uint32_t deadline_ms) {
  util::StatusOr<uint64_t> id = SendServe(false, object, processor, deadline_ms);
  if (!id.ok()) return id.status();
  util::StatusOr<Reply> reply = WaitReplyFor(*id);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return reply->cost;
}

util::StatusOr<double> Client::Write(int64_t object, uint32_t processor,
                                     uint32_t deadline_ms) {
  util::StatusOr<uint64_t> id = SendServe(true, object, processor, deadline_ms);
  if (!id.ok()) return id.status();
  util::StatusOr<Reply> reply = WaitReplyFor(*id);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return reply->cost;
}

util::StatusOr<std::vector<double>> Client::Batch(const BatchRequest& request) {
  util::StatusOr<uint64_t> id = SendBatch(request);
  if (!id.ok()) return id.status();
  util::StatusOr<Reply> reply = WaitReplyFor(*id);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return std::move(reply->costs);
}

util::StatusOr<WireStats> Client::QueryStats() {
  uint64_t id = 0;
  util::Status sent = SendFrame(MsgType::kStats, {}, &id);
  if (!sent.ok()) return sent;
  util::StatusOr<Reply> reply = WaitReplyFor(id);
  if (!reply.ok()) return reply.status();
  if (!reply->status.ok()) return reply->status;
  return reply->stats;
}

util::StatusOr<uint64_t> Client::SendServe(bool is_write, int64_t object,
                                           uint32_t processor,
                                           uint32_t deadline_ms) {
  ServeRequest request;
  request.object = object;
  request.processor = processor;
  request.deadline_ms = deadline_ms;
  std::string payload;
  EncodeServe(request, &payload);
  uint64_t id = 0;
  util::Status sent = SendFrame(is_write ? MsgType::kWrite : MsgType::kRead,
                                payload, &id);
  if (!sent.ok()) return sent;
  return id;
}

util::StatusOr<uint64_t> Client::SendBatch(const BatchRequest& request) {
  std::string payload;
  EncodeBatch(request, &payload);
  uint64_t id = 0;
  util::Status sent = SendFrame(MsgType::kBatch, payload, &id);
  if (!sent.ok()) return sent;
  return id;
}

}  // namespace objalloc::net
