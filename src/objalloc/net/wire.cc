#include "objalloc/net/wire.h"

#include <cstring>

#include "objalloc/util/crc32.h"

namespace objalloc::net {

namespace {

// Little-endian byte IO through memcpy — alignment- and strict-aliasing-
// safe on every target this builds for (the repo already assumes a
// little-endian host for its on-disk record format, util/record_io.h).
template <typename T>
void AppendLe(T value, std::string* out) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out->append(bytes, sizeof(T));
}

// Bounds-checked sequential reader over a payload view. Every Read
// advances only on success; `ok` latches false forever on the first
// short read, so callers can chain reads and test once.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  template <typename T>
  T Read() {
    T value{};
    if (pos_ + sizeof(T) > data_.size()) {
      ok_ = false;
      return value;
    }
    std::memcpy(&value, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return value;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

util::Status ShortPayload(const char* what) {
  return util::Status::InvalidArgument(std::string(what) +
                                       ": truncated or oversized payload");
}

}  // namespace

bool IsRequestType(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kPing:
    case MsgType::kRegister:
    case MsgType::kRead:
    case MsgType::kWrite:
    case MsgType::kBatch:
    case MsgType::kStats:
      return true;
    default:
      return false;
  }
}

namespace {

bool IsKnownType(uint8_t type) {
  if (IsRequestType(type)) return true;
  if (type == static_cast<uint8_t>(MsgType::kProtocolError)) return true;
  return IsRequestType(type & ~kReplyBit) && (type & kReplyBit) != 0;
}

}  // namespace

DecodeResult DecodeFrame(std::string_view buffer, size_t max_frame_bytes,
                         Frame* frame, size_t* consumed, std::string* error) {
  if (buffer.size() < sizeof(uint32_t)) return DecodeResult::kNeedMore;
  uint32_t length = 0;
  std::memcpy(&length, buffer.data(), sizeof(length));
  // Bounds come first: `length` is attacker-controlled and must never size
  // a read or an allocation before these checks.
  if (length < kFrameHeaderBytes) {
    *error = "frame length below fixed header";
    return DecodeResult::kError;
  }
  if (static_cast<size_t>(length) + sizeof(uint32_t) > max_frame_bytes) {
    *error = "frame length exceeds maximum";
    return DecodeResult::kError;
  }
  if (buffer.size() < sizeof(uint32_t) + length) return DecodeResult::kNeedMore;

  const char* body = buffer.data() + sizeof(uint32_t);
  uint32_t crc = 0;
  std::memcpy(&crc, body, sizeof(crc));
  const char* covered = body + sizeof(crc);
  const size_t covered_len = length - sizeof(crc);
  if (util::Crc32(covered, covered_len) != crc) {
    *error = "frame CRC mismatch";
    return DecodeResult::kError;
  }

  Frame out;
  out.version = static_cast<uint8_t>(covered[0]);
  const uint8_t type = static_cast<uint8_t>(covered[1]);
  std::memcpy(&out.status, covered + 2, sizeof(out.status));
  std::memcpy(&out.request_id, covered + 4, sizeof(out.request_id));
  if (out.version != kWireVersion) {
    *error = "unsupported wire version";
    return DecodeResult::kError;
  }
  if (!IsKnownType(type)) {
    *error = "unknown message type";
    return DecodeResult::kError;
  }
  out.type = static_cast<MsgType>(type);
  out.payload = std::string_view(covered + 12, covered_len - 12);
  *frame = out;
  *consumed = sizeof(uint32_t) + length;
  return DecodeResult::kFrame;
}

void AppendFrame(MsgType type, uint16_t status, uint64_t request_id,
                 std::string_view payload, std::string* out) {
  const uint32_t length =
      static_cast<uint32_t>(kFrameHeaderBytes + payload.size());
  AppendLe(length, out);
  const size_t crc_pos = out->size();
  AppendLe(uint32_t{0}, out);  // CRC patched below
  const size_t covered_pos = out->size();
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(type));
  AppendLe(status, out);
  AppendLe(request_id, out);
  out->append(payload);
  const uint32_t crc =
      util::Crc32(out->data() + covered_pos, out->size() - covered_pos);
  std::memcpy(out->data() + crc_pos, &crc, sizeof(crc));
}

void EncodeRegister(const RegisterRequest& request, std::string* out) {
  AppendLe(request.object, out);
  AppendLe(request.scheme_mask, out);
  out->push_back(static_cast<char>(request.algorithm));
}

util::Status ParseRegister(std::string_view payload, RegisterRequest* out) {
  ByteReader reader(payload);
  out->object = reader.Read<int64_t>();
  out->scheme_mask = reader.Read<uint64_t>();
  out->algorithm = reader.Read<uint8_t>();
  if (!reader.AtEnd()) return ShortPayload("register");
  return util::Status::Ok();
}

void EncodeServe(const ServeRequest& request, std::string* out) {
  AppendLe(request.object, out);
  AppendLe(request.processor, out);
  AppendLe(request.deadline_ms, out);
}

util::Status ParseServe(std::string_view payload, ServeRequest* out) {
  ByteReader reader(payload);
  out->object = reader.Read<int64_t>();
  out->processor = reader.Read<uint32_t>();
  out->deadline_ms = reader.Read<uint32_t>();
  if (!reader.AtEnd()) return ShortPayload("serve");
  return util::Status::Ok();
}

void EncodeBatch(const BatchRequest& request, std::string* out) {
  AppendLe(static_cast<uint32_t>(request.items.size()), out);
  AppendLe(request.deadline_ms, out);
  for (const BatchItem& item : request.items) {
    AppendLe(item.object, out);
    AppendLe(item.processor, out);
    out->push_back(static_cast<char>(item.is_write));
  }
}

util::Status ParseBatch(std::string_view payload, size_t max_items,
                        BatchRequest* out) {
  ByteReader reader(payload);
  const uint32_t count = reader.Read<uint32_t>();
  out->deadline_ms = reader.Read<uint32_t>();
  if (!reader.ok()) return ShortPayload("batch");
  // The declared count is validated against both the cap and the actual
  // byte length before reserve() sees it.
  if (count > max_items) {
    return util::Status::InvalidArgument("batch item count exceeds maximum");
  }
  constexpr size_t kItemBytes = 8 + 4 + 1;
  if (payload.size() != 8 + static_cast<size_t>(count) * kItemBytes) {
    return ShortPayload("batch");
  }
  out->items.clear();
  out->items.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    BatchItem item;
    item.object = reader.Read<int64_t>();
    item.processor = reader.Read<uint32_t>();
    item.is_write = reader.Read<uint8_t>();
    out->items.push_back(item);
  }
  if (!reader.AtEnd()) return ShortPayload("batch");
  return util::Status::Ok();
}

void EncodeCost(double cost, std::string* out) { AppendLe(cost, out); }

util::Status ParseCost(std::string_view payload, double* out) {
  ByteReader reader(payload);
  *out = reader.Read<double>();
  if (!reader.AtEnd()) return ShortPayload("cost");
  return util::Status::Ok();
}

void EncodeCosts(const std::vector<double>& costs, std::string* out) {
  AppendLe(static_cast<uint32_t>(costs.size()), out);
  for (double cost : costs) AppendLe(cost, out);
}

util::Status ParseCosts(std::string_view payload, size_t max_items,
                        std::vector<double>* out) {
  ByteReader reader(payload);
  const uint32_t count = reader.Read<uint32_t>();
  if (!reader.ok()) return ShortPayload("costs");
  if (count > max_items) {
    return util::Status::InvalidArgument("cost count exceeds maximum");
  }
  if (payload.size() != 4 + static_cast<size_t>(count) * sizeof(double)) {
    return ShortPayload("costs");
  }
  out->clear();
  out->reserve(count);
  for (uint32_t i = 0; i < count; ++i) out->push_back(reader.Read<double>());
  return util::Status::Ok();
}

void EncodeStats(const WireStats& stats, std::string* out) {
  AppendLe(stats.objects, out);
  AppendLe(stats.total_requests, out);
  AppendLe(stats.control_messages, out);
  AppendLe(stats.data_messages, out);
  AppendLe(stats.io_ops, out);
  AppendLe(stats.scheme_crc, out);
  AppendLe(stats.admitted_events, out);
  AppendLe(stats.shed_overloaded, out);
  AppendLe(stats.shed_timeout, out);
  AppendLe(stats.rejected_events, out);
  AppendLe(stats.protocol_errors, out);
  AppendLe(stats.connections_accepted, out);
  AppendLe(stats.connections_evicted, out);
  AppendLe(stats.connections_idle_closed, out);
  AppendLe(stats.batches_submitted, out);
  out->push_back(static_cast<char>(stats.durability_state));
}

util::Status ParseStats(std::string_view payload, WireStats* out) {
  ByteReader reader(payload);
  out->objects = reader.Read<uint64_t>();
  out->total_requests = reader.Read<int64_t>();
  out->control_messages = reader.Read<int64_t>();
  out->data_messages = reader.Read<int64_t>();
  out->io_ops = reader.Read<int64_t>();
  out->scheme_crc = reader.Read<uint32_t>();
  out->admitted_events = reader.Read<uint64_t>();
  out->shed_overloaded = reader.Read<uint64_t>();
  out->shed_timeout = reader.Read<uint64_t>();
  out->rejected_events = reader.Read<uint64_t>();
  out->protocol_errors = reader.Read<uint64_t>();
  out->connections_accepted = reader.Read<uint64_t>();
  out->connections_evicted = reader.Read<uint64_t>();
  out->connections_idle_closed = reader.Read<uint64_t>();
  out->batches_submitted = reader.Read<uint64_t>();
  out->durability_state = reader.Read<uint8_t>();
  if (!reader.AtEnd()) return ShortPayload("stats");
  return util::Status::Ok();
}

uint16_t WireStatus(util::StatusCode code) {
  return static_cast<uint16_t>(code);
}

util::StatusCode CodeFromWireStatus(uint16_t status) {
  if (status > static_cast<uint16_t>(util::StatusCode::kOverloaded)) {
    return util::StatusCode::kInternal;
  }
  return static_cast<util::StatusCode>(status);
}

util::Status StatusFromReply(const Frame& frame) {
  if (frame.status == 0) return util::Status::Ok();
  return util::Status(CodeFromWireStatus(frame.status),
                      std::string(frame.payload));
}

}  // namespace objalloc::net
