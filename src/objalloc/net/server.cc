#include "objalloc/net/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "objalloc/net/signal_drain.h"
#include "objalloc/util/crc32.h"
#include "objalloc/util/logging.h"

namespace objalloc::net {

namespace {

// epoll user-data tags for the non-connection fds; connection ids start
// well above them.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;
constexpr uint64_t kSignalTag = 2;
constexpr uint64_t kFirstConnectionId = 8;

util::Status Errno(const char* what) {
  return util::Status::Internal(std::string(what) + ": " +
                                std::strerror(errno));
}

}  // namespace

util::Status ServerOptions::Validate() const {
  if (max_frame_bytes < kFrameOverheadBytes + 64) {
    return util::Status::InvalidArgument("max_frame_bytes too small to frame");
  }
  if (batch_max_events == 0) {
    return util::Status::InvalidArgument("batch_max_events must be positive");
  }
  if (max_batch_items == 0 || max_batch_items > batch_max_events) {
    return util::Status::InvalidArgument(
        "max_batch_items must be in [1, batch_max_events] — a wire batch "
        "enters one engine batch whole");
  }
  if (max_inflight_per_connection == 0 || max_inflight_global == 0) {
    return util::Status::InvalidArgument("in-flight budgets must be positive");
  }
  if (max_inflight_per_connection < max_batch_items) {
    return util::Status::InvalidArgument(
        "per-connection budget below max_batch_items would shed every "
        "full-size batch");
  }
  if (max_connections == 0) {
    return util::Status::InvalidArgument("max_connections must be positive");
  }
  if (max_write_buffer_bytes < max_frame_bytes) {
    return util::Status::InvalidArgument(
        "max_write_buffer_bytes below max_frame_bytes cannot hold one reply");
  }
  return util::Status::Ok();
}

Server::Server(core::ObjectService* service, const ServerOptions& options)
    : service_(service), options_(options) {
  OBJALLOC_CHECK(service != nullptr) << "Server requires a service";
}

Server::~Server() {
  for (auto& [id, conn] : connections_) {
    if (conn->fd >= 0) close(conn->fd);
  }
  if (listen_fd_ >= 0) close(listen_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

util::Status Server::Start() {
  if (started_) return util::Status::FailedPrecondition("already started");
  util::Status valid = options_.Validate();
  if (!valid.ok()) return valid;

  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    return util::Status::InvalidArgument("bad bind_address: " +
                                         options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (listen(listen_fd_, options_.listen_backlog) != 0) return Errno("listen");

  sockaddr_in bound = {};
  socklen_t bound_len = sizeof(bound);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len) != 0) {
    return Errno("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) return Errno("epoll_create1");
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd_ < 0) return Errno("eventfd");

  epoll_event ev = {};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.u64 = kWakeTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    return Errno("epoll_ctl(wake)");
  }
  if (options_.drain_on_sigterm) {
    DrainSignal::Install();
    ev.data.u64 = kSignalTag;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, DrainSignal::fd(), &ev) != 0) {
      return Errno("epoll_ctl(drain signal)");
    }
  }

  for (BatchSlot& slot : slots_) {
    slot.events.reserve(options_.batch_max_events);
  }
  next_connection_id_ = kFirstConnectionId;  // ids above the fd tags
  started_ = true;
  return util::Status::Ok();
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = write(wake_fd_, &one, sizeof(one));
  }
}

ServerStats Server::Stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

util::Status Server::Run() {
  if (!started_) return util::Status::FailedPrecondition("Start first");
  util::Status status = RunLoop();
  if (!status.ok()) return status;
  DrainAndExit();
  return util::Status::Ok();
}

util::Status Server::RunLoop() {
  epoll_event events[64];
  while (true) {
    const bool drain =
        drain_requested_.load(std::memory_order_acquire) ||
        (options_.drain_on_sigterm && DrainSignal::Requested());
    if (drain) return util::Status::Ok();

    const int timeout = EpollTimeoutMs(Clock::now());
    const int n =
        epoll_wait(epoll_fd_, events, std::size(events), timeout);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("epoll_wait");
    }

    // One load sample per iteration drives every admission decision until
    // the next wakeup — O(1) relaxed reads, no pipeline fence.
    last_load_ = service_->Load();
    const TimePoint now = Clock::now();

    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        AcceptReady();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t counter = 0;
        while (read(wake_fd_, &counter, sizeof(counter)) > 0) {
        }
        continue;
      }
      if (tag == kSignalTag) continue;  // drain flag checked at loop top
      auto it = connections_.find(tag);
      if (it == connections_.end()) continue;  // closed earlier this wakeup
      Connection* conn = it->second.get();
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(tag);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      // HandleWritable may evict; re-check liveness before reading.
      if (connections_.find(tag) == connections_.end()) continue;
      if (events[i].events & EPOLLIN) HandleReadable(conn);
    }

    SweepDeadlines(now);
    MaybeSubmit(now, /*force=*/false);
    SweepIdle(now);
  }
}

int Server::EpollTimeoutMs(TimePoint now) const {
  // A submitted batch needs polling (there is no completion fd), so cap
  // the sleep; otherwise sleep until the batching window or the nearest
  // deadline forces action.
  int64_t timeout_ms = -1;
  auto consider = [&](TimePoint when) {
    if (when == TimePoint::max()) return;
    int64_t ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     when - now)
                     .count();
    ms = std::max<int64_t>(ms, 0);
    if (timeout_ms < 0 || ms < timeout_ms) timeout_ms = ms;
  };
  bool any_submitted = false;
  for (const BatchSlot& slot : slots_) any_submitted |= slot.submitted;
  if (any_submitted) return 1;
  if (!pending_.empty()) {
    consider(oldest_pending_ +
             std::chrono::microseconds(options_.batch_max_delay_us));
  }
  consider(min_deadline_);
  if (options_.idle_timeout_ms > 0 && !connections_.empty()) {
    const int64_t idle_step =
        std::max<int64_t>(options_.idle_timeout_ms / 4, 10);
    if (timeout_ms < 0 || idle_step < timeout_ms) timeout_ms = idle_step;
  }
  if (timeout_ms < 0) return -1;
  return static_cast<int>(std::min<int64_t>(timeout_ms, 1000));
}

void Server::AcceptReady() {
  while (true) {
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; the listener stays registered
    }
    if (connections_.size() >= options_.max_connections || draining_) {
      close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_refused;
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.socket_send_buffer_bytes > 0) {
      const int bytes = options_.socket_send_buffer_bytes;
      setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes));
    }

    auto conn = std::make_unique<Connection>();
    conn->id = next_connection_id_++;
    conn->fd = fd;
    conn->last_activity = Clock::now();
    epoll_event ev = {};
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    connections_.emplace(conn->id, std::move(conn));
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.connections_accepted;
  }
}

void Server::HandleReadable(Connection* conn) {
  // ONE bounded read per wakeup, then parse. Draining a blasting client
  // until EAGAIN would livelock the loop (reading forever, never replying,
  // never visiting other connections); level-triggered epoll re-delivers
  // whatever is still queued on the next iteration.
  char buffer[64 * 1024];
  while (true) {
    const ssize_t n = read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->in.append(buffer, static_cast<size_t>(n));
      conn->last_activity = Clock::now();
      break;
    }
    if (n == 0) {  // peer closed — mid-frame disconnects land here too
      CloseConnection(conn->id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConnection(conn->id);
    return;
  }
  ParseFrames(conn);
}

void Server::ParseFrames(Connection* conn) {
  size_t offset = 0;
  const uint64_t id = conn->id;
  while (!conn->close_after_flush) {
    Frame frame;
    size_t consumed = 0;
    std::string error;
    const DecodeResult result =
        DecodeFrame(std::string_view(conn->in).substr(offset),
                    options_.max_frame_bytes, &frame, &consumed, &error);
    if (result == DecodeResult::kNeedMore) break;
    if (result == DecodeResult::kError) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      SendProtocolError(conn, 0, error);
      // The error reply may have flushed fully and closed the connection.
      if (connections_.find(id) == connections_.end()) return;
      break;
    }
    offset += consumed;
    HandleRequest(conn, frame);
    // The handler may have closed the connection (eviction on reply).
    if (connections_.find(id) == connections_.end()) return;
  }
  if (offset > 0) conn->in.erase(0, offset);
  if (conn->close_after_flush) conn->in.clear();
}

void Server::HandleRequest(Connection* conn, const Frame& frame) {
  if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
    // Framing-valid but a reply/error type from a client: protocol abuse.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    SendProtocolError(conn, frame.request_id,
                      "reply message type sent as a request");
    return;
  }
  switch (frame.type) {
    case MsgType::kPing:
      ReplyOk(conn, frame.type, frame.request_id, {});
      return;
    case MsgType::kRegister:
      HandleRegister(conn, frame);
      return;
    case MsgType::kRead:
    case MsgType::kWrite:
      AdmitServe(conn, frame);
      return;
    case MsgType::kBatch:
      AdmitBatchOp(conn, frame);
      return;
    case MsgType::kStats:
      HandleStats(conn, frame);
      return;
    default:
      return;  // unreachable: IsRequestType filtered
  }
}

void Server::HandleRegister(Connection* conn, const Frame& frame) {
  RegisterRequest request;
  util::Status status = ParseRegister(frame.payload, &request);
  if (status.ok() &&
      request.algorithm > static_cast<uint8_t>(core::AlgorithmKind::kAdaptive)) {
    status = util::Status::InvalidArgument("unknown algorithm kind");
  }
  if (status.ok() && draining_) {
    status = util::Status::Unavailable("server draining");
  }
  if (status.ok()) {
    core::ObjectConfig config;
    config.initial_scheme = model::ProcessorSet(request.scheme_mask);
    config.algorithm = static_cast<core::AlgorithmKind>(request.algorithm);
    status = service_->AddObject(request.object, config);
  }
  if (status.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.registrations;
    }
    ReplyOk(conn, frame.type, frame.request_id, {});
  } else {
    ReplyStatus(conn, frame.type, frame.request_id, status);
  }
}

void Server::HandleStats(Connection* conn, const Frame& frame) {
  // Engine aggregates need a quiet pipeline; finish what is in flight
  // first (stats is a rare, diagnostic op — the stall is the price).
  FinalizeAllSlots();
  WireStats wire;
  wire.objects = service_->object_count();
  wire.total_requests = service_->TotalRequests();
  const model::CostBreakdown breakdown = service_->TotalBreakdown();
  wire.control_messages = breakdown.control_messages;
  wire.data_messages = breakdown.data_messages;
  wire.io_ops = breakdown.io_ops;
  wire.scheme_crc = SchemeCrc();
  wire.durability_state = static_cast<uint8_t>(last_load_.durability);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    wire.admitted_events = stats_.admitted_events;
    wire.shed_overloaded = stats_.shed_overloaded;
    wire.shed_timeout = stats_.shed_timeout;
    wire.rejected_events = stats_.rejected_events;
    wire.protocol_errors = stats_.protocol_errors;
    wire.connections_accepted = stats_.connections_accepted;
    wire.connections_evicted = stats_.connections_evicted;
    wire.connections_idle_closed = stats_.connections_idle_closed;
    wire.batches_submitted = stats_.batches_submitted;
  }
  encode_scratch_.clear();
  EncodeStats(wire, &encode_scratch_);
  ReplyOk(conn, frame.type, frame.request_id, encode_scratch_);
}

uint32_t Server::SchemeCrc() const {
  uint32_t crc = 0;
  for (core::ObjectId id : service_->SortedObjectIds()) {
    const uint64_t mask = service_->StatsFor(id)->scheme.mask();
    crc = util::Crc32(&id, sizeof(id), crc);
    crc = util::Crc32(&mask, sizeof(mask), crc);
  }
  return crc;
}

util::Status Server::CheckAdmission(const Connection& conn, size_t events,
                                    bool has_write) {
  if (draining_) return util::Status::Unavailable("server draining");
  if (conn.inflight_events + events > options_.max_inflight_per_connection) {
    return util::Status::Overloaded("connection in-flight budget exceeded");
  }
  if (global_inflight_ + events > options_.max_inflight_global) {
    return util::Status::Overloaded("server in-flight budget exceeded");
  }
  if (last_load_.executor_queued_ops > options_.shed_executor_queue_ops) {
    return util::Status::Overloaded("shard executor backlogged");
  }
  if (last_load_.wal_backlog_bytes > options_.shed_wal_backlog_bytes) {
    return util::Status::Overloaded("WAL backlogged");
  }
  if (has_write && options_.shed_writes_when_degraded &&
      last_load_.durability == core::DurabilityState::kDegraded) {
    return util::Status::Unavailable("durability degraded; writes shed");
  }
  return util::Status::Ok();
}

void Server::AdmitServe(Connection* conn, const Frame& frame) {
  ServeRequest request;
  util::Status status = ParseServe(frame.payload, &request);
  if (!status.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_events;
    }
    ReplyStatus(conn, frame.type, frame.request_id, status);
    return;
  }
  const bool is_write = frame.type == MsgType::kWrite;
  status = CheckAdmission(*conn, 1, is_write);
  if (!status.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed_overloaded;
    }
    ReplyStatus(conn, frame.type, frame.request_id, status);
    return;
  }
  // Pre-validate so the coalesced engine batch can never be rejected by
  // this event (ServeBatch admission is all-or-nothing across clients).
  if (!service_->HasObject(request.object)) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_events;
    }
    ReplyStatus(conn, frame.type, frame.request_id,
                util::Status::NotFound("object not registered"));
    return;
  }
  if (request.processor >= static_cast<uint32_t>(service_->num_processors())) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_events;
    }
    ReplyStatus(conn, frame.type, frame.request_id,
                util::Status::OutOfRange("processor out of range"));
    return;
  }

  const TimePoint now = Clock::now();
  uint32_t deadline_ms = request.deadline_ms != 0 ? request.deadline_ms
                                                  : options_.default_deadline_ms;
  Pending pending;
  pending.connection = conn->id;
  pending.request_id = frame.request_id;
  pending.type = frame.type;
  pending.events = 1;
  pending.deadline = deadline_ms == 0
                         ? TimePoint::max()
                         : now + std::chrono::milliseconds(deadline_ms);
  if (pending_.empty()) oldest_pending_ = now;
  if (pending.deadline < min_deadline_) min_deadline_ = pending.deadline;
  pending_.push_back(pending);

  workload::MultiObjectEvent event;
  event.object = request.object;
  event.request = is_write
                      ? model::Request::Write(
                            static_cast<model::ProcessorId>(request.processor))
                      : model::Request::Read(
                            static_cast<model::ProcessorId>(request.processor));
  pending_events_.push_back(event);
  conn->inflight_events += 1;
  global_inflight_ += 1;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.admitted_events;
  }
}

void Server::AdmitBatchOp(Connection* conn, const Frame& frame) {
  BatchRequest request;
  util::Status status =
      ParseBatch(frame.payload, options_.max_batch_items, &request);
  if (status.ok() && request.items.empty()) {
    status = util::Status::InvalidArgument("empty batch");
  }
  bool has_write = false;
  if (status.ok()) {
    // All-or-nothing, like the library path: one bad item rejects the wire
    // batch before anything is queued.
    for (const BatchItem& item : request.items) {
      if (!service_->HasObject(item.object)) {
        status = util::Status::NotFound("object not registered");
        break;
      }
      if (item.processor >=
          static_cast<uint32_t>(service_->num_processors())) {
        status = util::Status::OutOfRange("processor out of range");
        break;
      }
      has_write |= item.is_write != 0;
    }
  }
  if (!status.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.rejected_events += request.items.empty() ? 1 : request.items.size();
    }
    ReplyStatus(conn, frame.type, frame.request_id, status);
    return;
  }
  status = CheckAdmission(*conn, request.items.size(), has_write);
  if (!status.ok()) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.shed_overloaded += request.items.size();
    }
    ReplyStatus(conn, frame.type, frame.request_id, status);
    return;
  }

  const TimePoint now = Clock::now();
  uint32_t deadline_ms = request.deadline_ms != 0 ? request.deadline_ms
                                                  : options_.default_deadline_ms;
  Pending pending;
  pending.connection = conn->id;
  pending.request_id = frame.request_id;
  pending.type = frame.type;
  pending.events = static_cast<uint32_t>(request.items.size());
  pending.deadline = deadline_ms == 0
                         ? TimePoint::max()
                         : now + std::chrono::milliseconds(deadline_ms);
  if (pending_.empty()) oldest_pending_ = now;
  if (pending.deadline < min_deadline_) min_deadline_ = pending.deadline;
  pending_.push_back(pending);

  for (const BatchItem& item : request.items) {
    workload::MultiObjectEvent event;
    event.object = item.object;
    const auto processor = static_cast<model::ProcessorId>(item.processor);
    event.request = item.is_write != 0 ? model::Request::Write(processor)
                                       : model::Request::Read(processor);
    pending_events_.push_back(event);
  }
  conn->inflight_events += request.items.size();
  global_inflight_ += request.items.size();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.admitted_events += request.items.size();
  }
}

void Server::SweepDeadlines(TimePoint now) {
  if (min_deadline_ > now) return;
  TimePoint next_min = TimePoint::max();
  for (Pending& pending : pending_) {
    if (pending.expired) continue;
    if (pending.deadline <= now) {
      pending.expired = true;
      global_inflight_ -= pending.events;
      auto it = connections_.find(pending.connection);
      if (it != connections_.end()) {
        Connection* conn = it->second.get();
        conn->inflight_events -= pending.events;
        ReplyStatus(conn, pending.type, pending.request_id,
                    util::Status::Timeout("deadline elapsed in queue"));
      }
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.shed_timeout += pending.events;
    } else if (pending.deadline < next_min) {
      next_min = pending.deadline;
    }
  }
  min_deadline_ = next_min;
}

void Server::MaybeSubmit(TimePoint now, bool force) {
  // Finalize whatever already completed so replies flow and slots free up:
  // we are the engine's only caller, so fewer in-flight batches than
  // submitted slots means the oldest slot is (or is about to be) done.
  int submitted = 0;
  for (const BatchSlot& slot : slots_) submitted += slot.submitted ? 1 : 0;
  while (submitted > 0 &&
         service_->Load().inflight_batches < static_cast<uint32_t>(submitted)) {
    FinalizeSlot(&slots_[(next_slot_ + 2 - submitted) % 2]);
    --submitted;
  }

  while (!pending_.empty()) {
    const bool window_full = pending_events_.size() >= options_.batch_max_events;
    const bool window_stale =
        now - oldest_pending_ >=
        std::chrono::microseconds(options_.batch_max_delay_us);
    if (!force && !window_full && !window_stale) return;
    BatchSlot* slot = &slots_[next_slot_];
    if (slot->submitted) {
      if (!force && !window_full) return;  // both slots busy; wait for stale
      FinalizeSlot(slot);
    }
    SubmitPending(now);
    if (force) {
      // Drain path: serve to completion immediately, then keep cutting.
      FinalizeAllSlots();
    }
  }
}

void Server::SubmitPending(TimePoint now) {
  BatchSlot* slot = &slots_[next_slot_];
  OBJALLOC_CHECK(!slot->submitted);
  slot->events.clear();
  slot->replies.clear();

  while (!pending_.empty() &&
         slot->events.size() < options_.batch_max_events) {
    Pending& front = pending_.front();
    if (!front.expired &&
        slot->events.size() + front.events > options_.batch_max_events) {
      break;  // batch full; the request waits whole for the next batch
    }
    if (front.expired) {
      pending_events_.erase(pending_events_.begin(),
                            pending_events_.begin() + front.events);
      pending_.pop_front();
      continue;
    }
    ReplyRef ref;
    ref.connection = front.connection;
    ref.request_id = front.request_id;
    ref.type = front.type;
    ref.first = static_cast<uint32_t>(slot->events.size());
    ref.events = front.events;
    slot->replies.push_back(ref);
    slot->events.insert(slot->events.end(), pending_events_.begin(),
                        pending_events_.begin() + front.events);
    pending_events_.erase(pending_events_.begin(),
                          pending_events_.begin() + front.events);
    pending_.pop_front();
  }
  if (!pending_.empty()) oldest_pending_ = now;
  if (slot->events.empty()) return;  // everything at the front had expired

  util::Status status = service_->SubmitBatch(
      std::span<const workload::MultiObjectEvent>(slot->events),
      &slot->result, &slot->ticket);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.batches_submitted;
  }
  if (!status.ok()) {
    // Should be unreachable — every event was pre-validated — but a reply
    // is owed regardless; never leave a client hanging.
    for (const ReplyRef& ref : slot->replies) {
      auto it = connections_.find(ref.connection);
      if (it == connections_.end()) continue;
      it->second->inflight_events -= ref.events;
      ReplyStatus(it->second.get(), ref.type, ref.request_id, status);
    }
    global_inflight_ -= slot->events.size();
    slot->events.clear();
    slot->replies.clear();
    return;
  }
  slot->submitted = true;
  next_slot_ = (next_slot_ + 1) % 2;
  if (slot->ticket.completed) FinalizeSlot(slot);
}

void Server::FinalizeSlot(BatchSlot* slot) {
  if (!slot->submitted) return;
  util::Status status = service_->WaitBatch(&slot->ticket);
  slot->submitted = false;
  global_inflight_ -= slot->events.size();

  std::vector<double> costs_scratch;
  for (const ReplyRef& ref : slot->replies) {
    auto it = connections_.find(ref.connection);
    if (it == connections_.end()) continue;  // peer gone; reply discarded
    Connection* conn = it->second.get();
    conn->inflight_events -= ref.events;
    if (!status.ok()) {
      ReplyStatus(conn, ref.type, ref.request_id, status);
      continue;
    }
    encode_scratch_.clear();
    if (ref.type == MsgType::kBatch) {
      costs_scratch.assign(slot->result.costs.begin() + ref.first,
                           slot->result.costs.begin() + ref.first + ref.events);
      EncodeCosts(costs_scratch, &encode_scratch_);
    } else {
      EncodeCost(slot->result.costs[ref.first], &encode_scratch_);
    }
    ReplyOk(conn, ref.type, ref.request_id, encode_scratch_);
  }
  slot->events.clear();
  slot->replies.clear();
}

void Server::FinalizeAllSlots() {
  // Oldest first: next_slot_ points at the next slot to fill, so the slot
  // after it (mod 2) was submitted earlier.
  FinalizeSlot(&slots_[next_slot_ % 2]);
  FinalizeSlot(&slots_[(next_slot_ + 1) % 2]);
}

void Server::ReplyStatus(Connection* conn, MsgType request_type,
                         uint64_t request_id, const util::Status& status) {
  const auto reply_type = static_cast<MsgType>(
      static_cast<uint8_t>(request_type) | kReplyBit);
  AppendFrame(reply_type, WireStatus(status.code()), request_id,
              status.message(), &conn->out);
  FlushConnection(conn);
}

void Server::ReplyOk(Connection* conn, MsgType request_type,
                     uint64_t request_id, std::string_view payload) {
  const auto reply_type = static_cast<MsgType>(
      static_cast<uint8_t>(request_type) | kReplyBit);
  AppendFrame(reply_type, 0, request_id, payload, &conn->out);
  FlushConnection(conn);
}

void Server::SendProtocolError(Connection* conn, uint64_t request_id,
                               const std::string& reason) {
  AppendFrame(MsgType::kProtocolError,
              WireStatus(util::StatusCode::kInvalidArgument), request_id,
              reason, &conn->out);
  conn->close_after_flush = true;
  FlushConnection(conn);
}

void Server::HandleWritable(Connection* conn) {
  conn->last_activity = Clock::now();
  FlushConnection(conn);
}

void Server::FlushConnection(Connection* conn) {
  while (!conn->out.empty()) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE,
    // not a process-killing SIGPIPE.
    const ssize_t n =
        send(conn->fd, conn->out.data(), conn->out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->out.erase(0, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn->id);  // peer reset mid-reply
    return;
  }
  if (conn->out.empty() && conn->close_after_flush) {
    CloseConnection(conn->id);
    return;
  }
  if (conn->out.size() > options_.max_write_buffer_bytes) {
    // Slow client: its unread replies may not hold the server's memory
    // hostage. Evict — the socket close is the backpressure.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_evicted;
    }
    CloseConnection(conn->id);
    return;
  }
  UpdateWriteInterest(conn);
}

void Server::UpdateWriteInterest(Connection* conn) {
  const bool want = !conn->out.empty();
  if (want == conn->want_write) return;
  conn->want_write = want;
  epoll_event ev = {};
  ev.events = want ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
  ev.data.u64 = conn->id;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void Server::CloseConnection(uint64_t id) {
  auto it = connections_.find(id);
  if (it == connections_.end()) return;
  Connection* conn = it->second.get();
  // Its queued requests stay admitted and will serve; their replies are
  // discarded at finalize when the connection lookup fails. The global
  // budget is released then, the per-connection one dies here.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  connections_.erase(it);
}

void Server::SweepIdle(TimePoint now) {
  if (options_.idle_timeout_ms == 0) return;
  const auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<uint64_t> idle;
  for (const auto& [id, conn] : connections_) {
    if (conn->inflight_events == 0 && conn->out.empty() &&
        now - conn->last_activity > limit) {
      idle.push_back(id);
    }
  }
  for (uint64_t id : idle) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections_idle_closed;
    }
    CloseConnection(id);
  }
}

void Server::DrainAndExit() {
  draining_ = true;
  // Close the listener outright — leaving it open would keep the kernel
  // accepting into the backlog, stranding clients that will never be read.
  if (listen_fd_ >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
    close(listen_fd_);
    listen_fd_ = -1;
  }

  // Serve everything already admitted (expired requests still get their
  // kTimeout replies via the sweep), then quiesce the engine.
  SweepDeadlines(Clock::now());
  MaybeSubmit(Clock::now(), /*force=*/true);
  FinalizeAllSlots();
  OBJALLOC_CHECK_EQ(global_inflight_, 0u);

  if (service_->Load().durability == core::DurabilityState::kDurable) {
    (void)service_->SyncDurable();
  }

  // Bounded-grace flush of the remaining reply bytes: slow clients get
  // half a second, then the process leaves anyway.
  const TimePoint give_up = Clock::now() + std::chrono::milliseconds(500);
  while (Clock::now() < give_up) {
    bool any = false;
    std::vector<uint64_t> ids;
    ids.reserve(connections_.size());
    for (const auto& [id, conn] : connections_) ids.push_back(id);
    for (uint64_t id : ids) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      FlushConnection(it->second.get());
      it = connections_.find(id);
      if (it != connections_.end() && !it->second->out.empty()) any = true;
    }
    if (!any) break;
    epoll_event events[16];
    epoll_wait(epoll_fd_, events, std::size(events), 20);
  }
  std::vector<uint64_t> ids;
  ids.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) ids.push_back(id);
  for (uint64_t id : ids) CloseConnection(id);
}

}  // namespace objalloc::net
